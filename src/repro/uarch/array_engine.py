"""Struct-of-arrays simulation engine (``--engine=array``).

:class:`ArrayPipeline` is the second implementation of the cycle model in
:class:`~repro.uarch.pipeline.Pipeline` — same core, same trace, same
cycle-by-cycle scheduling decisions, different data layout. Where the
object engine walks per-entry Python objects (``ReorderBuffer`` deque +
done set, ``Scheduler`` tuple heaps, ``LoadStoreQueues`` sets, per-access
``DynInst`` attribute chains), the array engine runs the hot loop over
preallocated flat tables indexed by sequence number:

* one **batched decode pass** lowers the whole trace into parallel arrays
  (PC, effective address, FU class, latency, load/store/branch flags,
  producer tuples, code-layout addresses and i-cache line probes),
* one **batched branch-prediction pass** replays TAGE/BTB/RAS for every
  branch in trace order before timing starts (fetch consults predictors
  strictly in trace order, so the outcome stream is a pure function of the
  trace — the loop then consumes a precomputed outcome byte per branch),
* the ROB becomes two integers (``retired``/``alloc_seq`` — allocation and
  retirement are both in program order, so the ROB *is* the contiguous
  window between them) plus a completion bytearray,
* the scheduler becomes six plain-int heaps (per FU class × priority
  level, entries packed ``(seq << 1) | critical``) with a batched
  stage-sort-select pick identical to the object scheduler's
  per-class-budget merge,
* the LSQ becomes two occupancy counters plus an O(1) window test for
  store-to-load forwarding, and
* wakeup becomes index arithmetic over ``dep_count``/``waiters`` arrays.

The equivalence contract (docs/ENGINE.md): for every workload × mode cell
the array engine produces a :class:`~repro.uarch.stats.SimStats` whose
:meth:`~repro.uarch.stats.SimStats.digest` is identical to the object
engine's, emits an identical event stream to an attached tracer, and runs
the same invariant audits — its array state is mapped back onto the object
structures (:meth:`ArrayPipeline._sync_views`) whenever the invariant
checker, a crash bundle, or end-of-run telemetry needs to observe them.
``tests/sim/test_engine_equivalence.py`` asserts the digest contract;
``tests/uarch/test_array_engine.py`` covers the view mapping.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import accumulate, compress

from ..isa.opcodes import FuClass, Opcode
from ..resilience.errors import InvariantViolation
from .pipeline import Pipeline
from .stats import PcLoadStats

__all__ = ["ArrayPipeline"]

#: FU-class order shared with the object scheduler's heap map.
_FU_ORDER = (FuClass.ALU, FuClass.LOAD, FuClass.STORE)

#: Branch-outcome codes in the precomputed per-seq outcome table.
_OK, _TAKEN, _BTB_MISS, _MISPREDICT = 0, 1, 2, 3


class ArrayPipeline(Pipeline):
    """The array engine: one simulation run over struct-of-arrays state.

    Construction is identical to :class:`~repro.uarch.pipeline.Pipeline`
    (same structures are built and registered into telemetry — they serve
    as the *views* the invariant checker and crash bundles observe); only
    :meth:`run` is replaced.
    """

    # -- batched decode ------------------------------------------------------

    def _decode_tables(self):
        """Lower the trace into parallel per-seq arrays.

        Static properties (FU class, latency, layout address, i-cache line
        probes, ...) are first tabulated per *static* instruction — the
        program is tiny next to the dynamic trace — and then broadcast to
        per-seq arrays with C-speed ``map``/comprehension passes, so the
        per-dynamic-instruction Python work is a couple of list lookups.

        The layout-independent arrays are a pure function of the (immutable)
        trace, so they are memoized on it — a sweep running many cells over
        one trace decodes it once. Layout-dependent arrays (addresses, line
        probes, code sizes shift with the annotation prefixes) are rebuilt
        per run.
        """
        trace = self.trace
        insts = trace.insts
        n = len(insts)
        shared = getattr(trace, "_soa_shared", None)
        if shared is None:
            shared = self._decode_shared(trace)
            trace._soa_shared = shared
        (pc_a, addr_a, mem_src_a, fu_a, lat_a, flags_a, kind_a, isload_a,
         isstore_a, brkind_a, producers_a, maxprod_a, cload_a,
         cstore_a) = shared

        # Layout-dependent tables (annotation prefixes move addresses).
        layout = self.layout
        addresses = layout.addresses
        sizes = layout.sizes
        line_mask = ~(self.hierarchy.config.line_bytes - 1)
        probes_pc: list = []
        line_pc: list[int] = []
        for pc in range(len(trace.program.insts)):
            a = addresses[pc]
            line0 = a & line_mask
            line1 = (a + sizes[pc] - 1) & line_mask
            probes_pc.append(line0 if line0 == line1 else (line0, line1))
            line_pc.append(line0)
        la_a = list(map(addresses.__getitem__, pc_a))
        probes_a = list(map(probes_pc.__getitem__, pc_a))
        ftq_line_a = list(map(line_pc.__getitem__, pc_a))
        # Same-line run table over ftq_line_a: run_end_a[s] is the first seq
        # past the run containing s. The FTQ fill coalesces adjacent equal
        # lines; consuming a whole run per iteration keeps the fill O(runs)
        # even when mispredict flushes re-walk the stream from fetch_seq.
        run_end_a = [n] * n
        for s in range(n - 2, -1, -1):
            if ftq_line_a[s + 1] == ftq_line_a[s]:
                run_end_a[s] = run_end_a[s + 1]
            else:
                run_end_a[s] = s + 1
        # Dispatch is in program order, so dynamic code footprint is a
        # prefix sum over fetched sizes — read off at spill time instead of
        # accumulated per dispatch.
        csize_a = list(accumulate(map(sizes.__getitem__, pc_a)))

        if self.ibda is None:
            critical = self.critical_pcs
            if critical:
                crit_b = bytearray(1 if pc in critical else 0 for pc in pc_a)
            else:
                crit_b = bytearray(n)
            regprod_a = None
        else:
            # Hardware IBDA marks at dispatch from LLC-miss history, which
            # is timing-dependent — criticality stays dynamic; only the
            # (static) register-producer PC tuples are precomputed.
            crit_b = bytearray(n)
            regprod_a = getattr(trace, "_soa_regprod", None)
            if regprod_a is None:
                regprod_a = [
                    tuple(insts[p].sinst.idx for p in d.register_producers())
                    for d in insts
                ]
                trace._soa_regprod = regprod_a
        return (pc_a, addr_a, mem_src_a, fu_a, lat_a, la_a, probes_a,
                ftq_line_a, run_end_a, producers_a, flags_a, kind_a,
                isload_a, isstore_a, brkind_a, crit_b, regprod_a, csize_a,
                cload_a, cstore_a, maxprod_a)

    @staticmethod
    def _decode_shared(trace):
        """The layout-independent per-seq arrays (memoized per trace)."""
        insts = trace.insts
        statics = trace.program.insts

        # Per-PC (static) tables, one short pass over the program.
        fu_index = {FuClass.ALU: 0, FuClass.LOAD: 1, FuClass.STORE: 2,
                    FuClass.NONE: 0}
        fu_pc: list[int] = []
        # bit0 needs-RS, bit1 load, bit2 store, bit3 branch — one fused
        # flag byte per PC so the loop reads one table, not four.
        flags_pc: list[int] = []
        kind_pc = bytearray(len(statics))  # 0 ALU, 1 load, 2 store, 3 prefetch
        # 0 not a branch, 1 conditional, 2 return, 3 call, 4 plain
        # unconditional — the dispatch switch of Pipeline._predict_branch.
        brkind_pc = bytearray(len(statics))
        lat_pc: list[int] = []
        isload_pc = bytearray(len(statics))
        isstore_pc = bytearray(len(statics))
        for pc, s in enumerate(statics):
            fu = s.fu
            fu_pc.append(fu_index[fu])
            f = 0 if fu is FuClass.NONE else 1
            if s.is_load:
                isload_pc[pc] = 1
                kind_pc[pc] = 1
                f |= 2
            elif s.opcode is Opcode.PREFETCH:
                kind_pc[pc] = 3
            elif s.is_store:
                isstore_pc[pc] = 1
                kind_pc[pc] = 2
                f |= 4
            lat_pc.append(s.latency)
            if s.is_branch:
                f |= 8
                if s.is_cond_branch:
                    brkind_pc[pc] = 1
                elif s.is_ret:
                    brkind_pc[pc] = 2
                elif s.is_call:
                    brkind_pc[pc] = 3
                else:
                    brkind_pc[pc] = 4
            flags_pc.append(f)

        # Broadcast to per-seq arrays (bulk passes over the dynamic trace).
        pc_a = [d.sinst.idx for d in insts]
        addr_a = [d.addr for d in insts]
        mem_src_a = [d.mem_src for d in insts]
        # DynInst.producers() inlined: registers filtered to in-trace links
        # (the only negative link value is -1), then the memory producer.
        # The common case — no pre-trace links, no memory producer — reuses
        # the existing reg_srcs tuple without allocating.
        producers_a: list = []
        maxprod_a: list[int] = []
        prod_append = producers_a.append
        maxp_append = maxprod_a.append
        for d in insts:
            prod = d.reg_srcs
            if -1 in prod:
                prod = tuple(s for s in prod if s >= 0)
            ms = d.mem_src
            if ms >= 0:
                prod = prod + (ms,)
            prod_append(prod)
            # Newest producer per seq: once it has retired, every producer
            # has completed and the dependence scan can be skipped.
            maxp_append(max(prod) if prod else -1)
        fu_a = list(map(fu_pc.__getitem__, pc_a))
        lat_a = list(map(lat_pc.__getitem__, pc_a))
        flags_a = bytearray(map(flags_pc.__getitem__, pc_a))
        kind_a = bytearray(map(kind_pc.__getitem__, pc_a))
        isload_a = bytearray(map(isload_pc.__getitem__, pc_a))
        isstore_a = bytearray(map(isstore_pc.__getitem__, pc_a))
        brkind_a = bytearray(map(brkind_pc.__getitem__, pc_a))
        # Allocation and retirement are both in order, so load/store buffer
        # occupancy is a difference of prefix counts (loads/stores among
        # seqs < i) — no per-dispatch/per-retire counter updates.
        cload_a = [0]
        cload_a.extend(accumulate(isload_a))
        cstore_a = [0]
        cstore_a.extend(accumulate(isstore_a))
        return (pc_a, addr_a, mem_src_a, fu_a, lat_a, flags_a, kind_a,
                isload_a, isstore_a, brkind_a, producers_a, maxprod_a,
                cload_a, cstore_a)

    # -- batched branch prediction -------------------------------------------

    def _batch_predict(self, pc_a, brkind_a) -> bytearray:
        """Replay every branch prediction in trace order, before timing.

        Fetch walks the trace in sequence order and consults the predictor,
        BTB, and RAS exactly once per fetched branch, so the prediction
        outcome stream — and every predictor/BTB/RAS state transition and
        branch counter — is independent of timing. This pass performs the
        identical call sequence :meth:`Pipeline._predict_branch` would and
        returns one outcome byte per seq (``_OK``/``_TAKEN``/``_BTB_MISS``/
        ``_MISPREDICT``); branch stats land in ``self.stats`` here.
        ``brkind_a`` is the per-seq branch-kind byte from the decode pass;
        non-branches are skipped at C speed.
        """
        trace = self.trace
        insts = trace.insts
        pc_after = trace.pc_after
        addresses = self.layout.addresses
        predictor = self.predictor
        note_branch = predictor.note_branch
        btb = self.btb
        ras = self.ras
        stats = self.stats
        n = len(insts)
        out = bytearray(n)
        for seq in compress(range(n), brkind_a):
            kind = brkind_a[seq]
            pc_addr = addresses[pc_a[seq]]
            if kind == 1:  # conditional
                taken = insts[seq].taken
                stats.cond_branches += 1
                pc_branch = stats.branch_stats(pc_a[seq])
                pc_branch.execs += 1
                predicted = predictor.predict(pc_addr, taken)
                predictor.update(pc_addr, taken)
                if predicted != taken:
                    stats.branch_mispredicts += 1
                    pc_branch.mispredicts += 1
                    out[seq] = _MISPREDICT
                    continue
                if not taken:
                    continue
                known_target = btb.lookup(pc_addr)
                actual_target = addresses[pc_after(seq)]
                btb.update(pc_addr, actual_target)
                if known_target != actual_target:
                    stats.btb_misses += 1
                    out[seq] = _BTB_MISS
                else:
                    out[seq] = _TAKEN
                continue
            note_branch(True)
            if kind == 2:  # return
                predicted = ras.pop()
                actual_target = addresses[pc_after(seq)]
                if predicted != actual_target:
                    stats.ras_mispredicts += 1
                    out[seq] = _MISPREDICT
                else:
                    out[seq] = _TAKEN
                continue
            if kind == 3:  # call (pushes the RAS, then predicts via BTB)
                ras.push(addresses[pc_a[seq] + 1])
            known_target = btb.lookup(pc_addr)
            actual_target = addresses[pc_after(seq)]
            btb.update(pc_addr, actual_target)
            if known_target != actual_target:
                stats.btb_misses += 1
                out[seq] = _BTB_MISS
            else:
                out[seq] = _TAKEN
        return out

    # -- state mapping ---------------------------------------------------------

    def _sync_views(self, *, retired, alloc_seq, done_b, heaps, ready_size,
                    isload_a, isstore_a, lsq_counters, port_counters,
                    port_limited, ftq_counters, fdip_count):
        """Map array state onto the object structures (the audit views).

        The invariant checker, crash bundles, and telemetry collectors all
        observe ``self.rob`` / ``self.scheduler`` / ``self.lsq`` / counters
        on ``self.ports`` / ``self.ftq`` / ``self.fdip``. The array engine
        reconstructs those structures from its flat state whenever one of
        these observers runs — audits are periodic and failures terminal,
        so the mapping is off the hot path.
        """
        rob = self.rob
        rob._queue = deque(range(retired, alloc_seq))
        rob._done = {s for s in range(retired, alloc_seq) if done_b[s]}
        sched = self.scheduler
        rebuilt = {}
        for fu_i, fu in enumerate(_FU_ORDER):
            entries = [(0, e >> 1, e & 1) for e in heaps[fu_i][0]]
            entries += [(1, e >> 1, e & 1) for e in heaps[fu_i][1]]
            heapq.heapify(entries)
            rebuilt[fu] = entries
        sched._heaps = rebuilt
        sched._size = ready_size
        lsq = self.lsq
        lsq._loads = {s for s in range(retired, alloc_seq) if isload_a[s]}
        lsq._stores = {s for s in range(retired, alloc_seq) if isstore_a[s]}
        (lsq.stats.load_allocs, lsq.stats.store_allocs,
         lsq.stats.lb_full_stalls, lsq.stats.sb_full_stalls,
         lsq.stats.forwards) = lsq_counters
        self.ports.stats.issued = {
            FuClass.ALU: port_counters[0],
            FuClass.LOAD: port_counters[1],
            FuClass.STORE: port_counters[2],
        }
        self.ports.stats.port_limited_cycles = port_limited
        ftq = self.ftq
        ftq.pushed, ftq.popped, ftq.flushed = ftq_counters
        self.fdip.stats.prefetches = fdip_count

    def _spill_stats(self, counters, rob_stall_by_pc, load_pc_rows):
        """Write the loop's local counters into ``self.stats``.

        Idempotent (plain assignment), so it can run both at a failure
        raise site (the crash bundle's stall attribution reads the stats)
        and at the normal end of the run.
        """
        stats = self.stats
        (stats.rob_head_stall_cycles, stats.fetch_stall_cycles,
         stats.icache_stall_cycles, stats.issued, stats.issued_critical,
         stats.critical_bypass_events, stats.loads, stats.llc_load_misses,
         stats.store_forwards, stats.dynamic_code_bytes) = counters
        stats.rob_head_stall_by_pc = rob_stall_by_pc
        stats.load_pcs = {
            pc: PcLoadStats(*rec) for pc, rec in load_pc_rows.items()
        }

    # -- main loop -------------------------------------------------------------

    def run(self, max_cycles: int | None = None):
        """Drain :meth:`cycles` to completion (same contract as the object
        engine's ``run``; the generator exists for the multicore driver)."""
        gen = self.cycles(max_cycles)
        try:
            while True:
                next(gen)
        except StopIteration as stop:
            return stop.value

    def cycles(self, max_cycles: int | None = None):
        """Generator form of the hot loop: yields the local clock after
        each ``now += advance``, returning the final stats — see
        :meth:`Pipeline.cycles` for the lockstep ordering contract."""
        cfg = self.config
        stats = self.stats
        n = len(self.trace.insts)
        watchdog = self.watchdog
        if max_cycles is None:
            max_cycles = watchdog.max_cycles
        if max_cycles is None:
            max_cycles = 600 * n + 100_000
        livelock_limit = watchdog.livelock_cycles
        last_progress = 0
        checker = self.invariants
        next_audit = checker.interval if checker is not None else 0

        (pc_a, addr_a, mem_src_a, fu_a, lat_a, la_a, probes_a,
         ftq_line_a, run_end_a, producers_a, flags_a, kind_a, isload_a,
         isstore_a, brkind_a, crit_b, regprod_a, csize_a, cload_a,
         cstore_a, maxprod_a) = self._decode_tables()
        outcome_a = self._batch_predict(pc_a, brkind_a)

        # Hot-path locals (method/attribute lookups hoisted out of the loop).
        hier = self.hierarchy
        hier_load = hier.load
        hier_store = hier.store
        hier_swpf = hier.software_prefetch
        hier_ifetch = hier.inst_fetch
        hier_ipf = hier.inst_prefetch
        hier_advance = hier._advance
        hier_outstanding = hier.outstanding_demand_misses
        # L1 hit fast paths are inlined below: when no fill is pending
        # (``now < hier._next_fill``) and the probed line is resident, the
        # loop applies the exact side effects of the hierarchy's hit branch
        # (stats, LRU tick, ``last_advance``) without the call chain. Any
        # other outcome falls back to the full hierarchy entry point, which
        # re-probes and counts the access itself.
        line_bytes = hier.config.line_bytes
        l1d = hier.l1d
        l1d_sets = l1d._sets
        l1d_nsets = l1d.num_sets
        l1d_stats = l1d.stats
        l1d_lat = hier.config.l1d_latency
        l1i = hier.l1i
        l1i_sets = l1i._sets
        l1i_nsets = l1i.num_sets
        l1i_stats = l1i.stats
        ibda = self.ibda
        tracer = self.tracer
        record_timing = self.record_timing
        ready_times = self.ready_times
        issue_times = self.issue_times
        dispatch_times = self.dispatch_times
        gauges = self._gauges
        heappush = heapq.heappush
        heappop = heapq.heappop

        fetch_width = cfg.fetch_width
        rename_width = cfg.rename_width
        issue_width = cfg.issue_width
        retire_width = cfg.retire_width
        rob_entries = cfg.rob_entries
        rs_entries = cfg.rs_entries
        lb_entries = cfg.load_buffer
        sb_entries = cfg.store_buffer
        dq_cap = cfg.decode_queue
        redirect_penalty = cfg.mispredict_redirect_penalty
        btb_miss_penalty = cfg.btb_miss_penalty
        fwd_latency = cfg.store_forward_latency
        fdip_lines = cfg.fdip_lines_per_cycle
        ftq_entries = cfg.ftq_entries
        bud_alu = cfg.alu_ports
        bud_ld = cfg.load_ports
        bud_st = cfg.store_ports
        crisp = self.scheduler.policy == "crisp"

        # Struct-of-arrays in-flight state.
        done_b = bytearray(n)          # completion scoreboard, by seq
        dep_a = [0] * n                # outstanding producer count, by seq
        waiters_a: list = [None] * n   # consumer seq lists, by producer seq
        heaps = ([], []), ([], []), ([], [])  # [fu][priority] ready heaps
        h_alu0, h_alu1 = heaps[0]
        h_ld0, h_ld1 = heaps[1]
        h_st0, h_st1 = heaps[2]
        ready_size = 0
        events: list[int] = []         # packed completion * stride + seq
        stride = n + 1
        inflight_miss: dict[int, tuple[int, int]] = {}
        load_pc_rows: dict[int, list] = {}  # pc -> PcLoadStats field list
        rob_stall_by_pc: dict[int, int] = {}
        ftq_q = self.ftq._queue        # shared so len(self.ftq) stays live

        # Ready-heap routing, resolved per seq ahead of time: rheap_a[seq]
        # is the exact heap object a ready push targets and rpacked_a[seq]
        # the packed ``(seq << 1) | crit`` entry. Static criticality (ooo /
        # crisp annotations) fills both up front; IBDA fills them at
        # dispatch, when its dynamic marking decision is made.
        key_bit = 1 << 30              # packed entries stay below this
        pack_mask = key_bit - 1
        if ibda is None:
            if crisp:
                rheap_a = [heaps[fu_a[s]][0 if crit_b[s] else 1]
                           for s in range(n)]
            else:
                rheap_a = [heaps[fu_a[s]][1] for s in range(n)]
            rpacked_a = [(s << 1) | crit_b[s] for s in range(n)]
        else:
            rheap_a = [None] * n
            rpacked_a = [0] * n

        # Flat counters (spilled into stats / structure views on demand).
        rob_head_stall = fetch_stall = icache_stall = 0
        stall_pc = -1                  # current ROB-head stall run (pc, len)
        stall_acc = 0
        issued_ct = issued_crit_ct = bypass_ct = 0
        loads_ct = llc_misses_ct = store_forwards_ct = 0
        load_allocs = store_allocs = lb_full = sb_full = forwards_ct = 0
        alu_issued = ld_issued = st_issued = port_limited = 0
        ftq_pushed = ftq_popped = ftq_flushed = fdip_ct = 0
        ftq_len = 0                    # mirrors len(ftq_q)

        fetch_seq = 0
        dq_head = 0                    # decode queue is the range [dq_head, fetch_seq)
        ftq_seq = 0
        fetch_blocked_until = 0
        pending_redirect: int | None = None
        last_line = -1
        retired = 0
        alloc_seq = 0                  # ROB tail: window is [retired, alloc_seq)
        rs_used = 0
        now = 0
        window_retired = 0
        upc_window = self.upc_window
        next_window_end = upc_window if upc_window else 0
        # Sentinel deadlines collapse the "is this observer attached?"
        # checks into one int compare per cycle.
        _far = 1 << 62
        next_audit = checker.interval if checker is not None else _far
        next_sample = 0 if tracer is not None else _far
        failure = None                 # "cycle_limit" | "livelock"

        try:
            while retired < n:
                if now >= max_cycles:
                    failure = "cycle_limit"
                    break
                if now - last_progress >= livelock_limit:
                    failure = "livelock"
                    break

                # 1. Completion events -> batched wakeup.
                ev_limit = now * stride + stride
                while events and events[0] < ev_limit:
                    seq = heappop(events) % stride
                    done_b[seq] = 1
                    if tracer is not None:
                        tracer.complete(now, seq)
                    if inflight_miss:
                        miss = inflight_miss.pop(seq, None)
                        if miss is not None:
                            # Completion-time MLP resample (object engine
                            # does the same max-of-two-samples accounting).
                            pc, issue_mlp = miss
                            hier_advance(now)
                            completion_mlp = hier_outstanding() + 1
                            load_pc_rows[pc][6] += (
                                issue_mlp if issue_mlp > completion_mlp
                                else completion_mlp
                            )
                    if pending_redirect == seq:
                        t = now + redirect_penalty
                        if t > fetch_blocked_until:
                            fetch_blocked_until = t
                        pending_redirect = None
                    wl = waiters_a[seq]
                    if wl is not None:
                        waiters_a[seq] = None
                        for w in wl:
                            dep_a[w] -= 1
                            if dep_a[w] == 0:
                                heappush(rheap_a[w], rpacked_a[w])
                                ready_size += 1
                                if record_timing:
                                    ready_times[w] = now

                # 2. Retire (in order, from the window head). The retired
                # span is the run of set scoreboard bytes at the head, found
                # with one C-speed scan for the first incomplete entry.
                if alloc_seq > retired:
                    if done_b[retired]:
                        lim = retired + retire_width
                        if lim > alloc_seq:
                            lim = alloc_seq
                        stop = done_b.find(0, retired, lim)
                        new_r = lim if stop < 0 else stop
                        if tracer is not None:
                            for s in range(retired, new_r):
                                tracer.retire(now, s, pc_a[s])
                        window_retired += new_r - retired
                        retired = new_r
                        last_progress = now
                    else:
                        # Stall cycles at one window head come in long runs;
                        # accumulate locally and flush to the per-PC dict
                        # when the head (or an observer) changes.
                        rob_head_stall += 1
                        head_pc = pc_a[retired]
                        if head_pc == stall_pc:
                            stall_acc += 1
                        else:
                            if stall_acc:
                                rob_stall_by_pc[stall_pc] = (
                                    rob_stall_by_pc.get(stall_pc, 0)
                                    + stall_acc
                                )
                            stall_pc = head_pc
                            stall_acc = 1

                # 3. Issue: batched stage-sort-select over the ready heaps.
                # Per-FU staging pops up to the port budget (priority-0
                # heap first), the merged candidates sort by (priority,
                # age) via the key_bit packing, and the issue width takes
                # the front -- the same decision the object scheduler's
                # pick() makes, without tuple churn.
                if ready_size:
                    cands: list = []
                    stage = cands.append
                    b = bud_alu
                    while b and h_alu0:
                        stage(heappop(h_alu0))
                        b -= 1
                    while b and h_alu1:
                        stage(key_bit | heappop(h_alu1))
                        b -= 1
                    b = bud_ld
                    while b and h_ld0:
                        stage(heappop(h_ld0))
                        b -= 1
                    while b and h_ld1:
                        stage(key_bit | heappop(h_ld1))
                        b -= 1
                    b = bud_st
                    while b and h_st0:
                        stage(heappop(h_st0))
                        b -= 1
                    while b and h_st1:
                        stage(key_bit | heappop(h_st1))
                        b -= 1
                    cands.sort()
                    if len(cands) > issue_width:
                        picks = cands[:issue_width]
                        for v in cands[issue_width:]:
                            e = v & pack_mask
                            heappush(
                                heaps[fu_a[e >> 1]][0 if v < key_bit else 1], e
                            )
                    else:
                        picks = cands
                    ready_size -= len(picks)
                    if len(picks) == issue_width and ready_size:
                        port_limited += 1
                    oldest_pick = (picks[0] & pack_mask) >> 1
                    if crisp:
                        for v in picks:
                            s = (v & pack_mask) >> 1
                            if s < oldest_pick:
                                oldest_pick = s
                    for v in picks:
                        e = v & pack_mask
                        seq = e >> 1
                        crit = e & 1
                        rs_used -= 1
                        if record_timing:
                            issue_times[seq] = now
                        kind = kind_a[seq]
                        if kind == 1:  # load
                            pc = pc_a[seq]
                            rec = load_pc_rows.get(pc)
                            if rec is None:
                                rec = load_pc_rows[pc] = [0, 0, 0, 0, 0, 0, 0]
                            rec[0] += 1
                            loads_ct += 1
                            ms = mem_src_a[seq]
                            if ms >= retired and isstore_a[ms]:
                                completion = now + fwd_latency
                                forwards_ct += 1
                                store_forwards_ct += 1
                                rec[4] += 1
                                rec[5] += fwd_latency
                            else:
                                ad = addr_a[seq]
                                line = ad - (ad % line_bytes)
                                cset = l1d_sets[
                                    (line // line_bytes) % l1d_nsets
                                ]
                                if now < hier._next_fill and line in cset:
                                    # Inlined L1D hit (hierarchy.load's
                                    # first branch; no fill can apply).
                                    if now > hier.last_advance:
                                        hier.last_advance = now
                                    l1d_stats.accesses += 1
                                    l1d_stats.hits += 1
                                    l1d._tick += 1
                                    cset[line] = l1d._tick
                                    completion = now + l1d_lat
                                    rec[1] += 1
                                    rec[5] += l1d_lat
                                else:
                                    res = hier_load(la_a[seq], ad, now)
                                    completion = res.completion
                                    rec[5] += completion - now
                                    level = res.level
                                    if level == "l1":
                                        rec[1] += 1
                                    elif level == "llc":
                                        rec[2] += 1
                                    if res.llc_miss:
                                        rec[3] += 1
                                        inflight_miss[seq] = (pc, res.mlp)
                                        llc_misses_ct += 1
                                        if ibda is not None:
                                            ibda.on_llc_miss(pc)
                                        if tracer is not None:
                                            tracer.llc_miss(now, seq, pc, ad)
                        elif kind == 3:  # software prefetch
                            hier_swpf(la_a[seq], addr_a[seq], now)
                            completion = now + 1
                        elif kind == 2:  # store
                            ad = addr_a[seq]
                            line = ad - (ad % line_bytes)
                            cset = l1d_sets[(line // line_bytes) % l1d_nsets]
                            if now < hier._next_fill and line in cset:
                                # Inlined L1D store hit (hierarchy.store's
                                # first branch; result is unused).
                                if now > hier.last_advance:
                                    hier.last_advance = now
                                l1d_stats.accesses += 1
                                l1d_stats.hits += 1
                                l1d._tick += 1
                                cset[line] = l1d._tick
                            else:
                                hier_store(la_a[seq], ad, now)
                            completion = now + 1
                        else:
                            completion = now + lat_a[seq]
                        heappush(events, completion * stride + seq)
                        fu_i = fu_a[seq]
                        if fu_i == 0:
                            alu_issued += 1
                        elif fu_i == 1:
                            ld_issued += 1
                        else:
                            st_issued += 1
                        if tracer is not None:
                            tracer.issue(now, seq, pc_a[seq], bool(crit))
                            ready = ready_times.get(seq)
                            if ready is not None:
                                self._issue_delay_hist.observe(now - ready)
                            if kind == 1:
                                self._load_latency_hist.observe(
                                    completion - now
                                )
                        issued_ct += 1
                        if crit:
                            issued_crit_ct += 1
                            if seq != oldest_pick:
                                bypass_ct += 1

                # 4. Rename / dispatch. Fetch appends consecutive seqs and
                # dispatch drains from the front, so the decode queue is
                # always the contiguous range [dq_head, fetch_seq).
                dispatched = 0
                dispatch_blocked = False
                clr = cload_a[retired]
                csr = cstore_a[retired]
                while dq_head < fetch_seq and dispatched < rename_width:
                    seq = dq_head
                    if alloc_seq - retired >= rob_entries:
                        dispatch_blocked = True
                        break
                    f = flags_a[seq]
                    if f & 1 and rs_used >= rs_entries:
                        dispatch_blocked = True
                        break
                    if f & 2:
                        # Load-buffer occupancy = loads in [retired, seq)
                        # (alloc_seq == seq while dispatching in order).
                        if cload_a[seq] - clr >= lb_entries:
                            lb_full += 1
                            dispatch_blocked = True
                            break
                        load_allocs += 1
                    elif f & 4:
                        if cstore_a[seq] - csr >= sb_entries:
                            sb_full += 1
                            dispatch_blocked = True
                            break
                        store_allocs += 1
                    dq_head += 1
                    dispatched += 1
                    alloc_seq += 1
                    if not f & 1:  # HALT
                        heappush(events, now * stride + stride + seq)
                        continue
                    if ibda is not None:
                        crit = 1 if ibda.on_dispatch(
                            pc_a[seq], bool(f & 2), regprod_a[seq]
                        ) else 0
                        crit_b[seq] = crit
                        rpacked_a[seq] = (seq << 1) | crit
                        rheap_a[seq] = heaps[fu_a[seq]][
                            0 if (crisp and crit) else 1
                        ]
                        if tracer is not None:
                            tracer.dispatch(now, seq, pc_a[seq], bool(crit))
                    elif tracer is not None:
                        tracer.dispatch(now, seq, pc_a[seq],
                                        bool(crit_b[seq]))
                    rs_used += 1
                    if record_timing:
                        dispatch_times[seq] = now
                    if maxprod_a[seq] < retired:
                        # Newest producer already retired: ready now, no
                        # dependence scan needed.
                        heappush(rheap_a[seq], rpacked_a[seq])
                        ready_size += 1
                        if record_timing:
                            ready_times[seq] = now
                        continue
                    remaining = 0
                    for p in producers_a[seq]:
                        # Retirement is in order, so every seq < `retired`
                        # has completed; the scoreboard covers the rest.
                        if p >= retired and not done_b[p]:
                            wl = waiters_a[p]
                            if wl is None:
                                waiters_a[p] = [seq]
                            else:
                                wl.append(seq)
                            remaining += 1
                    if remaining:
                        dep_a[seq] = remaining
                    else:
                        heappush(rheap_a[seq], rpacked_a[seq])
                        ready_size += 1
                        if record_timing:
                            ready_times[seq] = now

                # 5. Fetch (branch outcomes precomputed by the batch pass).
                if pending_redirect is None and now >= fetch_blocked_until:
                    fetched = 0
                    while (fetch_seq < n and fetched < fetch_width
                           and fetch_seq - dq_head < dq_cap):
                        seq = fetch_seq
                        pr = probes_a[seq]
                        if pr != last_line:
                            # An int probe can equal last_line; a tuple
                            # (line-straddling encoding) never does.
                            stall = False
                            if pr.__class__ is int:
                                hit = False
                                if now < hier._next_fill:
                                    cset = l1i_sets[
                                        (pr // line_bytes) % l1i_nsets
                                    ]
                                    if pr in cset:
                                        # Inlined L1I hit (inst_fetch's hit
                                        # branch; probes are line-aligned).
                                        if now > hier.last_advance:
                                            hier.last_advance = now
                                        l1i_stats.accesses += 1
                                        l1i_stats.hits += 1
                                        l1i._tick += 1
                                        cset[pr] = l1i._tick
                                        last_line = pr
                                        hit = True
                                if not hit:
                                    ready_at = hier_ifetch(pr, now)
                                    if ready_at > now:
                                        fetch_blocked_until = ready_at
                                        icache_stall += ready_at - now
                                        stall = True
                                    else:
                                        last_line = pr
                            else:
                                for probe in pr:
                                    if probe == last_line:
                                        continue
                                    if now < hier._next_fill:
                                        cset = l1i_sets[
                                            (probe // line_bytes) % l1i_nsets
                                        ]
                                        if probe in cset:
                                            if now > hier.last_advance:
                                                hier.last_advance = now
                                            l1i_stats.accesses += 1
                                            l1i_stats.hits += 1
                                            l1i._tick += 1
                                            cset[probe] = l1i._tick
                                            last_line = probe
                                            continue
                                    ready_at = hier_ifetch(probe, now)
                                    if ready_at > now:
                                        fetch_blocked_until = ready_at
                                        icache_stall += ready_at - now
                                        stall = True
                                        break
                                    last_line = probe
                            if stall:
                                break
                        fetch_seq += 1
                        fetched += 1
                        if tracer is not None:
                            tracer.fetch(now, seq, pc_a[seq])
                        if flags_a[seq] & 8:
                            outcome = outcome_a[seq]
                            if outcome == _MISPREDICT:
                                pending_redirect = seq
                                ftq_flushed += ftq_len
                                ftq_q.clear()
                                ftq_len = 0
                                ftq_seq = fetch_seq
                                if tracer is not None:
                                    tracer.flush(now, seq, pc_a[seq])
                                break
                            if outcome == _BTB_MISS:
                                fetch_blocked_until = now + btb_miss_penalty
                                break
                            if outcome == _TAKEN:
                                break
                else:
                    fetch_stall += 1

                # 6. FTQ fill + FDIP (inlined; coalesces duplicate lines).
                # run_end_a jumps over a whole same-line run at once: the
                # run's first line either coalesces into the queue tail or
                # is pushed, and the rest of the run would coalesce with it
                # seq by seq. Only the resting value of ftq_seq when the
                # queue drains is observable, and runs are consumed whole
                # by then either way.
                if pending_redirect is None:
                    while ftq_seq < n and ftq_len < ftq_entries:
                        line = ftq_line_a[ftq_seq]
                        if ftq_len and ftq_q[-1] == line:
                            ftq_seq = run_end_a[ftq_seq]
                            continue
                        ftq_q.append(line)
                        ftq_len += 1
                        ftq_pushed += 1
                        ftq_seq = run_end_a[ftq_seq]
                if ftq_len:
                    k = fdip_lines
                    while k and ftq_len:
                        ftq_popped += 1
                        line = ftq_q.popleft()
                        ftq_len -= 1
                        fdip_ct += 1
                        k -= 1
                        if now < hier._next_fill:
                            cset = l1i_sets[(line // line_bytes) % l1i_nsets]
                            if line in cset:
                                # Inlined inst_prefetch hit: uncounted probe
                                # (count=False) that still touches LRU.
                                if now > hier.last_advance:
                                    hier.last_advance = now
                                l1i._tick += 1
                                cset[line] = l1i._tick
                                continue
                        hier_ipf(line, now)

                # 7. Advance time (identical idle fast-forward condition).
                advance = 1
                if (
                    ready_size == 0
                    and not (alloc_seq > retired and done_b[retired])
                    and (dispatch_blocked or dq_head >= fetch_seq)
                    and (
                        pending_redirect is not None
                        or fetch_blocked_until > now + 1
                        or fetch_seq >= n
                        or fetch_seq - dq_head >= dq_cap
                    )
                    and not ftq_len
                    and (pending_redirect is not None or ftq_seq >= n)
                ):
                    targets = []
                    if events:
                        targets.append(events[0] // stride)
                    if (pending_redirect is None and fetch_seq < n
                            and fetch_seq - dq_head < dq_cap):
                        targets.append(fetch_blocked_until)
                    if targets:
                        advance = min(targets) - now
                        if advance < 1:
                            advance = 1
                if advance > 1:
                    idle = advance - 1
                    if alloc_seq > retired and not done_b[retired]:
                        rob_head_stall += idle
                        head_pc = pc_a[retired]
                        if head_pc == stall_pc:
                            stall_acc += idle
                        else:
                            if stall_acc:
                                rob_stall_by_pc[stall_pc] = (
                                    rob_stall_by_pc.get(stall_pc, 0)
                                    + stall_acc
                                )
                            stall_pc = head_pc
                            stall_acc = idle
                    if (pending_redirect is not None
                            or fetch_blocked_until > now + 1):
                        fetch_stall += idle
                if now >= next_audit:
                    # Map the array state into the object views, then run
                    # the same audit the object engine runs
                    # (docs/RESILIENCE.md). An InvariantViolation raised
                    # here propagates to the handler below with the views
                    # already synced for the crash bundle.
                    if stall_acc:
                        rob_stall_by_pc[stall_pc] = (
                            rob_stall_by_pc.get(stall_pc, 0) + stall_acc
                        )
                        stall_acc = 0
                    self._spill_stats(
                        (rob_head_stall, fetch_stall, icache_stall,
                         issued_ct, issued_crit_ct, bypass_ct, loads_ct,
                         llc_misses_ct, store_forwards_ct,
                         csize_a[alloc_seq - 1] if alloc_seq else 0),
                        rob_stall_by_pc, load_pc_rows,
                    )
                    self._sync_views(
                        retired=retired, alloc_seq=alloc_seq, done_b=done_b,
                        heaps=heaps, ready_size=ready_size,
                        isload_a=isload_a, isstore_a=isstore_a,
                        lsq_counters=(load_allocs, store_allocs, lb_full,
                                      sb_full, forwards_ct),
                        port_counters=(alu_issued, ld_issued, st_issued),
                        port_limited=port_limited,
                        ftq_counters=(ftq_pushed, ftq_popped, ftq_flushed),
                        fdip_count=fdip_ct,
                    )
                    window = range(retired, alloc_seq)
                    checker.audit(
                        self, now, retired=retired, rs_used=rs_used,
                        dep_count={s: dep_a[s] for s in window if dep_a[s]},
                        waiters={s: waiters_a[s] for s in window
                                 if waiters_a[s]},
                        done={s for s in window if done_b[s]},
                    )
                    next_audit = now + checker.interval
                if now >= next_sample:
                    occupancy = {
                        "rob": alloc_seq - retired,
                        "rs": rs_used,
                        "sched_ready": ready_size,
                        "mshr": hier.mshr.occupancy(),
                        "ftq": ftq_len,
                        "lsq_loads": cload_a[alloc_seq] - cload_a[retired],
                        "lsq_stores": cstore_a[alloc_seq] - cstore_a[retired],
                    }
                    for key, value in occupancy.items():
                        gauges[key].sample(value)
                    tracer.sample(now, occupancy)
                    next_sample = now + tracer.sample_interval
                now += advance
                if upc_window:
                    while now >= next_window_end:
                        stats.upc_timeline.append(window_retired)
                        window_retired = 0
                        next_window_end += upc_window
                yield now
        except InvariantViolation as violation:
            raise watchdog.attach_bundle(
                violation, self._bundle, now=now, retired=retired, total=n,
            ) from None

        # One spill + view sync covers every post-loop observer: watchdog
        # crash bundles, the final audit, and end-of-run telemetry.
        if stall_acc:
            rob_stall_by_pc[stall_pc] = (
                rob_stall_by_pc.get(stall_pc, 0) + stall_acc
            )
            stall_acc = 0
        self._spill_stats(
            (rob_head_stall, fetch_stall, icache_stall, issued_ct,
             issued_crit_ct, bypass_ct, loads_ct, llc_misses_ct,
             store_forwards_ct, csize_a[alloc_seq - 1] if alloc_seq else 0),
            rob_stall_by_pc, load_pc_rows,
        )
        self._sync_views(
            retired=retired, alloc_seq=alloc_seq, done_b=done_b, heaps=heaps,
            ready_size=ready_size, isload_a=isload_a, isstore_a=isstore_a,
            lsq_counters=(load_allocs, store_allocs, lb_full, sb_full,
                          forwards_ct),
            port_counters=(alu_issued, ld_issued, st_issued),
            port_limited=port_limited,
            ftq_counters=(ftq_pushed, ftq_popped, ftq_flushed),
            fdip_count=fdip_ct,
        )
        if failure == "cycle_limit":
            raise watchdog.cycle_limit_exceeded(
                self._bundle, now=now, max_cycles=max_cycles,
                retired=retired, total=n,
            )
        if failure == "livelock":
            raise watchdog.livelock_detected(
                self._bundle, now=now, last_progress=last_progress,
                retired=retired, total=n,
            )
        if checker is not None:
            try:
                checker.final_audit(self, now, retired=retired,
                                    rs_used=rs_used)
            except InvariantViolation as violation:
                raise watchdog.attach_bundle(
                    violation, self._bundle, now=now, retired=retired,
                    total=n,
                ) from None
        stats.cycles = now
        stats.retired = retired
        self._finalize()
        return stats
