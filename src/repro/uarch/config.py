"""Core configuration (Table 1) and the preset cores used in the paper.

``CoreConfig.skylake()`` reproduces Table 1 exactly; the remaining presets
are the RS/ROB scaling points of the Section 5.4 sensitivity study
(Figure 9), including the Sunny-Cove-like +50%/+100% configurations and the
smaller 64 RS / 180 ROB point.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..memory.hierarchy import HierarchyConfig


@dataclass(frozen=True)
class CoreConfig:
    """All microarchitectural parameters of the simulated core."""

    # Widths (Table 1: "Frontend width and retirement: 6-way").
    fetch_width: int = 6
    rename_width: int = 6
    issue_width: int = 6
    retire_width: int = 6
    # Window structures.
    rob_entries: int = 224
    rs_entries: int = 96
    load_buffer: int = 64
    store_buffer: int = 128
    decode_queue: int = 64
    # Functional units (Table 1: 4 ALU, 2 Load, 1 Store).
    alu_ports: int = 4
    load_ports: int = 2
    store_ports: int = 1
    # Scheduler policy: "oldest_first" (baseline) or "crisp".
    scheduler: str = "oldest_first"
    # Front end.
    predictor: str = "tage"
    btb_entries: int = 8192
    ras_depth: int = 32
    ftq_entries: int = 128
    fdip_lines_per_cycle: int = 2
    mispredict_redirect_penalty: int = 12
    btb_miss_penalty: int = 8
    # Memory behaviour.
    store_forward_latency: int = 5
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    # Clock (Table 1: 3.0 GHz all-core turbo); informational only.
    frequency_ghz: float = 3.0

    # -- presets -----------------------------------------------------------------

    @staticmethod
    def skylake(**overrides) -> "CoreConfig":
        """Table 1 configuration."""
        return replace(CoreConfig(), **overrides)

    @staticmethod
    def small_window(**overrides) -> "CoreConfig":
        """64-entry RS / 180-entry ROB point of Figure 9."""
        return replace(CoreConfig(), rs_entries=64, rob_entries=180, **overrides)

    @staticmethod
    def plus50(**overrides) -> "CoreConfig":
        """RS/ROB scaled by 1.5x (Sunny-Cove-like, Figure 9)."""
        return replace(CoreConfig(), rs_entries=144, rob_entries=336, **overrides)

    @staticmethod
    def plus100(**overrides) -> "CoreConfig":
        """RS/ROB scaled by 2x (Figure 9)."""
        return replace(CoreConfig(), rs_entries=192, rob_entries=448, **overrides)

    def with_scheduler(self, scheduler: str) -> "CoreConfig":
        return replace(self, scheduler=scheduler)

    def describe(self) -> str:
        """Render the configuration as the rows of Table 1."""
        hier = self.hierarchy
        rows = [
            ("CPU", "Skylake-like out-of-order core"),
            ("All-core turbo frequency", f"{self.frequency_ghz:.1f} GHz"),
            ("Frontend width and retirement", f"{self.fetch_width}-way"),
            (
                "Functional Units",
                f"{self.alu_ports} ALU, {self.load_ports} Load, {self.store_ports} Store",
            ),
            ("Branch Predictor", self.predictor.upper()),
            ("Branch Target Buffer (BTB)", f"{self.btb_entries // 1024}K entries"),
            ("ROB", f"{self.rob_entries} entries"),
            ("Reservation Station", f"{self.rs_entries} entries (unified)"),
            (
                "Baseline Scheduler",
                f"{self.issue_width}-oldest-ready-instructions-first"
                if self.scheduler == "oldest_first"
                else "CRISP critical-first",
            ),
            ("Data Prefetcher", " and ".join(p.upper() for p in hier.prefetchers) or "none"),
            ("Instruction Prefetcher", f"FDIP, {self.ftq_entries} FTQ entries"),
            ("Load Buffer", f"{self.load_buffer} entries"),
            ("Store Buffer", f"{self.store_buffer} entries"),
            ("L1 instruction cache", f"{hier.l1i_size // 1024} KiB, {hier.l1i_assoc}-way"),
            ("L1 data cache", f"{hier.l1d_size // 1024} KiB, {hier.l1d_assoc}-way"),
            ("LLC unified cache", f"{hier.llc_size // 1024 // 1024} MiB, {hier.llc_assoc}-way"),
            ("L1 D-cache latency", f"{hier.l1d_latency} cycles"),
            ("L1 I-cache latency", f"{hier.l1i_latency} cycles"),
            ("L3 cache latency", f"{hier.llc_latency} cycles"),
            ("Memory", "DDR4-2400 (1 channel)"),
        ]
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)
