"""CRISP: Critical Slice Prefetching -- full-system reproduction.

Reproduces Litz, Ayers & Ranganathan, "CRISP: Critical Slice Prefetching"
(ASPLOS 2022). See DESIGN.md for the system inventory and EXPERIMENTS.md
for the per-figure reproduction record.

Quick start::

    from repro import compare_workload

    cmp = compare_workload("mcf")
    print(cmp.improvement_pct("crisp"))   # CRISP IPC gain over OOO, percent

Package layout:

* :mod:`repro.isa`       -- mini-ISA, assembler, functional emulator
* :mod:`repro.workloads` -- the evaluated suite as synthetic analogues
* :mod:`repro.frontend`  -- TAGE, BTB, RAS, FTQ, FDIP
* :mod:`repro.memory`    -- caches, MSHRs, DRAM, prefetchers
* :mod:`repro.uarch`     -- the cycle-level out-of-order core
* :mod:`repro.core`      -- CRISP itself (+ the IBDA hardware baseline)
* :mod:`repro.sim`       -- top-level simulate/compare API
* :mod:`repro.telemetry` -- stats registry, event tracing, run reports
* :mod:`repro.experiments` -- one module per paper table/figure
"""

from .core import CrispConfig, CrispResult, DelinquencyConfig, run_crisp_flow
from .sim import SimResult, WorkloadComparison, compare_workload, geomean, simulate
from .telemetry import EventTracer, RunReport, StatsRegistry
from .uarch import CoreConfig, SimStats
from .workloads import Workload, get_workload, suite_names

__version__ = "1.0.0"

__all__ = [
    "CoreConfig",
    "CrispConfig",
    "CrispResult",
    "DelinquencyConfig",
    "EventTracer",
    "RunReport",
    "SimResult",
    "SimStats",
    "StatsRegistry",
    "Workload",
    "WorkloadComparison",
    "compare_workload",
    "geomean",
    "get_workload",
    "run_crisp_flow",
    "simulate",
    "suite_names",
    "__version__",
]
