"""Sampled simulation: functional warmup + interval-parallel execution.

Full cycle-accurate simulation pays detailed-pipeline cost on every
dynamic instruction; this package reproduces the standard simulator
answer — statistically sampled simulation — so long workloads become
affordable (docs/SAMPLING.md):

* :mod:`intervals`  — interval specs, trace slicing, the ``--sample``
  plan grammar (``off | smarts:<detail>/<period> | simpoint:<k>[/<i>]``),
* :mod:`warmup`     — functional warming of caches / TAGE / BTB / RAS /
  prefetcher tables across skipped regions,
* :mod:`bbv` / :mod:`simpoint` — basic-block vectors, pure-python
  k-means, representative-interval selection with weights,
* :mod:`estimate`   — exact :meth:`SimStats.merge` composition plus a
  CPI-sample mean with a 95% confidence interval on IPC,
* :mod:`sampler`    — serial orchestration and ``sampling.*`` telemetry,
* :mod:`cells`      — interval cells over the repro.parallel pool/cache.
"""

from __future__ import annotations

from .cells import run_cells_sampled
from .estimate import SampledEstimate, estimate_from_intervals
from .intervals import (
    Interval,
    SamplingPlan,
    TraceSlice,
    parse_sample,
    slice_trace,
    systematic_intervals,
)
from .sampler import (
    SamplingStats,
    plan_for_trace,
    simulate_interval,
    simulate_sampled,
)
from .simpoint import pick_representatives, simpoint_intervals
from .warmup import FunctionalWarmer, pipeline_state_digest, state_digest

__all__ = [
    "FunctionalWarmer",
    "Interval",
    "SampledEstimate",
    "SamplingPlan",
    "SamplingStats",
    "TraceSlice",
    "estimate_from_intervals",
    "parse_sample",
    "pick_representatives",
    "pipeline_state_digest",
    "plan_for_trace",
    "run_cells_sampled",
    "simpoint_intervals",
    "simulate_interval",
    "simulate_sampled",
    "slice_trace",
    "state_digest",
    "systematic_intervals",
]
