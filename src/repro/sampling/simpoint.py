"""SimPoint-style representative-interval selection.

Clusters per-interval basic-block vectors (:mod:`repro.sampling.bbv`) and
keeps one representative interval per cluster — the member closest to the
centroid — weighted by the fraction of intervals its cluster covers. The
whole-run estimate then weights each representative's CPI by that
fraction (:mod:`repro.sampling.estimate`).
"""

from __future__ import annotations

from .bbv import _densify, _distance2, bbv, block_leaders, kmeans, normalize
from .intervals import Interval, partition


def pick_representatives(
    vectors: list[dict], k: int
) -> list[tuple[int, float]]:
    """Choose ``<= k`` representative vector indices with cluster weights.

    Returns ``[(vector_index, weight), ...]`` sorted by vector index;
    weights sum to 1. Deterministic: ties in centroid distance break
    towards the earlier interval.
    """
    n = len(vectors)
    if n == 0:
        return []
    assignments, centroids = kmeans(vectors, k)
    _, dense = _densify(vectors)
    picks: list[tuple[int, float]] = []
    for cluster in range(len(centroids)):
        members = [i for i in range(n) if assignments[i] == cluster]
        if not members:
            continue
        representative = min(
            members, key=lambda i: (_distance2(dense[i], centroids[cluster]), i)
        )
        picks.append((representative, len(members) / n))
    picks.sort()
    return picks


def simpoint_intervals(trace, k: int, interval_size: int) -> list[Interval]:
    """Plan SimPoint intervals for ``trace``: partition, cluster, select."""
    bounds = partition(len(trace.insts), interval_size)
    leaders = block_leaders(trace.program)
    vectors = [normalize(bbv(trace, s, e, leaders)) for s, e in bounds]
    picks = pick_representatives(vectors, k)
    return [
        Interval(ordinal, bounds[idx][0], bounds[idx][1], weight=weight)
        for ordinal, (idx, weight) in enumerate(picks)
    ]
