"""Sampled-simulation orchestration.

``simulate_interval`` runs one trace interval through the detailed
pipeline behind functionally warmed state; ``simulate_sampled`` plans the
intervals for a whole workload (systematic SMARTS schedule or SimPoint
selection), runs each one serially, and combines them into a
:class:`~repro.sampling.estimate.SampledEstimate`. Interval-parallel
execution over the process pool lives in :mod:`repro.sampling.cells`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.simulator import SimResult, pipeline_class, resolve_mode
from ..uarch.config import CoreConfig
from .estimate import SampledEstimate, estimate_from_intervals
from .intervals import Interval, SamplingPlan, slice_trace, systematic_intervals
from .simpoint import simpoint_intervals
from .warmup import FunctionalWarmer

#: Warmup policies an interval cell may request.
WARMUP_POLICIES = ("functional", "none")


@dataclass
class SamplingStats:
    """Execution counters for sampled runs (the ``sampling.*`` group)."""

    runs: int = 0
    intervals: int = 0
    insts_total: int = 0
    insts_detailed: int = 0
    insts_warmed: int = 0
    detailed_cycles: int = 0

    def register_into(self, registry) -> None:
        """Register collector-backed counters (docs/METRICS.md contract)."""
        spec = (
            ("sampling.runs", "runs", "runs",
             "workload runs answered by the sampled estimator"),
            ("sampling.intervals", "intervals", "intervals",
             "trace intervals simulated in detail"),
            ("sampling.insts_total", "insts_total", "insts",
             "dynamic instructions the sampled runs stand for"),
            ("sampling.insts_detailed", "insts_detailed", "insts",
             "dynamic instructions simulated cycle-accurately"),
            ("sampling.insts_warmed", "insts_warmed", "insts",
             "dynamic instructions replayed by functional warmup"),
            ("sampling.detailed_cycles", "detailed_cycles", "cycles",
             "simulated cycles spent in detailed intervals"),
        )
        for name, field_name, unit, desc in spec:
            registry.counter(
                name,
                unit=unit,
                desc=desc,
                owner="sampled simulation",
                figure="",
                collect=lambda f=field_name: getattr(self, f),
            )


def simulate_interval(
    workload,
    mode: str = "ooo",
    *,
    interval: tuple[int, int],
    config: CoreConfig | None = None,
    critical_pcs: frozenset[int] = frozenset(),
    warmup: str = "functional",
    invariants: str | None = None,
    watchdog=None,
    stats: SamplingStats | None = None,
    engine: str | None = None,
) -> SimResult:
    """Detailed-simulate trace positions ``[start, end)`` of ``workload``.

    ``warmup="functional"`` first replays ``[0, start)`` through a
    :class:`~repro.sampling.warmup.FunctionalWarmer` and injects the
    warmed cache hierarchy / predictor / BTB / RAS into the pipeline;
    ``"none"`` starts the interval cold. The returned
    :class:`~repro.sim.simulator.SimResult` carries the *interval's*
    stats (cycles and retired count cover only the detailed region).
    ``engine`` picks the detailed cycle-model implementation
    (docs/ENGINE.md); warmup is functional either way.
    """
    if warmup not in WARMUP_POLICIES:
        raise ValueError(f"unknown warmup {warmup!r}; known: {WARMUP_POLICIES}")
    config, critical, ibda = resolve_mode(mode, config, critical_pcs)
    trace = workload.trace()
    start, end = interval
    if not 0 <= start < end <= len(trace.insts):
        raise ValueError(
            f"interval [{start}, {end}) outside trace of {len(trace.insts)} insts"
        )
    warm_components: dict = {}
    if warmup == "functional" and start > 0:
        warmer = FunctionalWarmer(trace.program, config, critical_pcs=critical)
        warmer.warm(trace, 0, start)
        warmer.finish()
        warm_components = warmer.components()
        if stats is not None:
            stats.insts_warmed += start
    run_context = {
        "workload": workload.name, "mode": mode,
        "interval": [start, end], "warmup": warmup,
    }
    pipeline = pipeline_class(engine)(
        slice_trace(trace, start, end),
        config,
        critical_pcs=critical,
        ibda=ibda,
        invariants=invariants,
        watchdog=watchdog,
        run_context=run_context,
        **warm_components,
    )
    interval_stats = pipeline.run()
    if stats is not None:
        stats.intervals += 1
        stats.insts_detailed += interval_stats.retired
        stats.detailed_cycles += interval_stats.cycles
    return SimResult(
        workload.name, mode, interval_stats, critical, registry=pipeline.telemetry
    )


def plan_for_trace(plan: SamplingPlan, trace) -> list[Interval]:
    """Materialise a plan's detailed intervals for one concrete trace."""
    if plan.policy == "smarts":
        return systematic_intervals(len(trace.insts), plan.detail, plan.period)
    if plan.policy == "simpoint":
        return simpoint_intervals(trace, plan.clusters, plan.interval)
    raise ValueError(f"cannot plan intervals for policy {plan.policy!r}")


def simulate_sampled(
    workload,
    mode: str = "ooo",
    *,
    plan: SamplingPlan,
    config: CoreConfig | None = None,
    critical_pcs: frozenset[int] = frozenset(),
    invariants: str | None = None,
    stats: SamplingStats | None = None,
    engine: str | None = None,
) -> SampledEstimate:
    """Run ``workload`` sampled per ``plan`` and return the estimate."""
    if plan.off:
        raise ValueError("plan is 'off'; call repro.sim.simulate instead")
    trace = workload.trace()
    intervals = plan_for_trace(plan, trace)
    interval_stats = [
        simulate_interval(
            workload,
            mode,
            interval=(iv.start, iv.end),
            config=config,
            critical_pcs=critical_pcs,
            invariants=invariants,
            stats=stats,
            engine=engine,
        ).stats
        for iv in intervals
    ]
    if stats is not None:
        stats.runs += 1
        stats.insts_total += len(trace.insts)
    return estimate_from_intervals(
        intervals, interval_stats, len(trace.insts), policy=plan.policy
    )
