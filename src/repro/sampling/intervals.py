"""Interval specs, trace slicing, and the ``--sample`` plan grammar.

Sampled simulation (docs/SAMPLING.md) runs only selected *intervals* of a
dynamic trace through the detailed pipeline. This module owns the three
pure pieces of that machinery:

* :class:`Interval` / :func:`systematic_intervals` / :func:`partition` --
  which trace positions are simulated in detail (SMARTS-style systematic
  scheduling, or the fixed partition BBV clustering selects from),
* :class:`TraceSlice` / :func:`slice_trace` -- a sub-range of an
  :class:`~repro.isa.emulator.ExecutionTrace` re-sequenced so the pipeline
  can replay it stand-alone (producers before the slice become trace-
  external, exactly like values that predate a full trace), and
* :class:`SamplingPlan` / :func:`parse_sample` -- the CLI grammar
  ``off | smarts:<detail>/<period> | simpoint:<k>[/<interval>]``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.emulator import ExecutionTrace
from ..isa.instruction import DynInst

#: Default SimPoint interval length (dynamic instructions) when the plan
#: spells only the cluster count (``simpoint:<k>``).
DEFAULT_SIMPOINT_INTERVAL = 1000


@dataclass(frozen=True)
class Interval:
    """One detailed-simulation interval: trace positions ``[start, end)``.

    ``weight`` is the fraction-of-run this interval stands for relative to
    its peers (1.0 under systematic sampling where every interval
    represents one period; the cluster fraction under SimPoint selection).
    """

    index: int
    start: int
    end: int
    weight: float = 1.0

    def __post_init__(self):
        if not 0 <= self.start < self.end:
            raise ValueError(f"bad interval bounds [{self.start}, {self.end})")
        if self.weight <= 0:
            raise ValueError(f"interval weight must be positive, got {self.weight}")

    def __len__(self) -> int:
        return self.end - self.start


@dataclass
class TraceSlice(ExecutionTrace):
    """A re-sequenced sub-range ``[start, end)`` of a parent trace.

    Looks exactly like a stand-alone :class:`ExecutionTrace` to the
    pipeline; ``boundary_pc`` answers :meth:`pc_after` for the slice's last
    instruction (a branch at the boundary needs its target PC, which lives
    one position past the slice in the parent trace).
    """

    start: int = 0
    end: int = 0
    boundary_pc: int = -1

    def pc_after(self, seq: int) -> int:
        nxt = seq + 1
        if nxt < len(self.insts):
            return self.insts[nxt].pc
        if self.boundary_pc < 0:
            raise IndexError(f"no instruction follows slice position {seq}")
        return self.boundary_pc


def slice_trace(trace: ExecutionTrace, start: int, end: int) -> TraceSlice:
    """Extract positions ``[start, end)`` of ``trace`` as a TraceSlice.

    Dynamic instructions are copied with sequence numbers rebased to the
    slice; producer links pointing before the slice are remapped to ``-1``
    (value predates the slice), which the pipeline already treats as
    "complete before the window" — the same convention a full trace uses
    for the initial machine state.
    """
    n = len(trace.insts)
    if not 0 <= start < end <= n:
        raise ValueError(f"slice [{start}, {end}) outside trace of {n} insts")
    insts = trace.insts
    sliced: list[DynInst] = []
    for pos in range(start, end):
        d = insts[pos]
        reg_srcs = tuple(s - start if s >= start else -1 for s in d.reg_srcs)
        mem_src = d.mem_src - start if d.mem_src >= start else -1
        sliced.append(
            DynInst(
                pos - start,
                d.sinst,
                addr=d.addr,
                taken=d.taken,
                reg_srcs=reg_srcs,
                mem_src=mem_src,
            )
        )
    return TraceSlice(
        program=trace.program,
        insts=sliced,
        final_regs=trace.final_regs,
        halted=trace.halted and end == n,
        start=start,
        end=end,
        boundary_pc=insts[end].pc if end < n else -1,
    )


def systematic_intervals(n: int, detail: int, period: int) -> list[Interval]:
    """SMARTS-style systematic schedule over a trace of ``n`` instructions.

    One ``detail``-instruction interval per ``period`` instructions, offset
    so each detailed window sits centred in its period. A trace shorter
    than one period degenerates to a single full-detail interval.
    """
    if not 0 < detail <= period:
        raise ValueError(f"need 0 < detail <= period, got {detail}/{period}")
    offset = (period - detail) // 2
    intervals: list[Interval] = []
    start = offset
    while start < n:
        end = min(start + detail, n)
        intervals.append(Interval(len(intervals), start, end))
        start += period
    if not intervals:
        intervals = [Interval(0, 0, n)]
    return intervals


def partition(n: int, size: int) -> list[tuple[int, int]]:
    """Consecutive ``size``-instruction interval bounds covering ``[0, n)``."""
    if size <= 0:
        raise ValueError(f"interval size must be positive, got {size}")
    return [(start, min(start + size, n)) for start in range(0, n, size)]


@dataclass(frozen=True)
class SamplingPlan:
    """Parsed ``--sample`` value; ``policy`` is off / smarts / simpoint."""

    policy: str
    detail: int = 0  # smarts: detailed-interval length (insts)
    period: int = 0  # smarts: one detailed interval per this many insts
    clusters: int = 0  # simpoint: k
    interval: int = 0  # simpoint: BBV interval length (insts)

    @property
    def off(self) -> bool:
        return self.policy == "off"

    def token(self) -> str:
        """Canonical string form (round-trips through parse_sample)."""
        if self.policy == "smarts":
            return f"smarts:{self.detail}/{self.period}"
        if self.policy == "simpoint":
            return f"simpoint:{self.clusters}/{self.interval}"
        return "off"


def parse_sample(spec: str) -> SamplingPlan:
    """Parse ``off | smarts:<detail>/<period> | simpoint:<k>[/<interval>]``."""
    spec = spec.strip()
    if spec == "off":
        return SamplingPlan("off")
    policy, sep, rest = spec.partition(":")
    if policy == "smarts":
        detail, sep2, period = rest.partition("/")
        try:
            detail_i, period_i = int(detail), int(period)
        except ValueError:
            raise ValueError(
                f"bad smarts spec {spec!r}; expected smarts:<detail>/<period>"
            ) from None
        if not sep2 or detail_i <= 0 or period_i < detail_i:
            raise ValueError(
                f"bad smarts spec {spec!r}; need 0 < detail <= period"
            )
        return SamplingPlan("smarts", detail=detail_i, period=period_i)
    if policy == "simpoint":
        clusters, _, interval = rest.partition("/")
        try:
            clusters_i = int(clusters)
            interval_i = int(interval) if interval else DEFAULT_SIMPOINT_INTERVAL
        except ValueError:
            raise ValueError(
                f"bad simpoint spec {spec!r}; expected simpoint:<k>[/<interval>]"
            ) from None
        if clusters_i <= 0 or interval_i <= 0:
            raise ValueError(f"bad simpoint spec {spec!r}; k and interval must be > 0")
        return SamplingPlan("simpoint", clusters=clusters_i, interval=interval_i)
    raise ValueError(
        f"unknown sampling policy {spec!r}; expected "
        "off | smarts:<detail>/<period> | simpoint:<k>[/<interval>]"
    )
