"""Combine per-interval stats into a whole-run estimate with a CI on IPC.

The estimator treats each detailed interval's CPI as one sample:

* point estimate — the weighted mean CPI (weights are interval length ×
  plan weight, so truncated tail intervals and SimPoint cluster fractions
  both come out right), inverted to IPC;
* uncertainty — the weighted sample standard error of the per-interval
  CPIs, widened by the two-sided 95% Student-t critical value for the
  interval count (SMARTS reports confidence the same way);
* counters — :meth:`repro.uarch.stats.SimStats.merge` over the detailed
  intervals (exact for what was simulated), plus an *extrapolated* view
  where each interval's counters are scaled to the run share it
  represents — the full-run-shaped stats experiment tables consume.

CPI (not IPC) is the averaged quantity: per-interval instruction counts
are the fixed design variable and cycles the measured one, so cycles per
instruction is the mean that extrapolates linearly to run length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..uarch.stats import SimStats
from .intervals import Interval

#: Two-sided 95% Student-t critical values by degrees of freedom (1..30);
#: larger samples use the normal approximation.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def t_critical(df: int) -> float:
    """95% two-sided Student-t critical value for ``df`` degrees of freedom."""
    if df < 1:
        return 0.0
    return _T_95.get(df, 1.960)


@dataclass
class SampledEstimate:
    """Whole-run estimate assembled from detailed-interval results."""

    policy: str
    total_insts: int
    detailed_insts: int
    detailed_cycles: int
    intervals: int
    cpi: float
    cpi_stderr: float
    ci_low: float  # 95% CI on CPI
    ci_high: float
    #: Exact merge of the detailed intervals' stats (unscaled).
    stats: SimStats = field(default_factory=SimStats)
    #: Counters extrapolated to run magnitude; cycles/retired are the
    #: whole-run estimate.
    extrapolated: SimStats = field(default_factory=SimStats)

    @property
    def ipc(self) -> float:
        return 1.0 / self.cpi if self.cpi else 0.0

    @property
    def est_cycles(self) -> int:
        return round(self.cpi * self.total_insts)

    @property
    def ipc_ci(self) -> tuple[float, float]:
        """95% CI on IPC (monotone transform of the CPI interval)."""
        low = 1.0 / self.ci_high if self.ci_high else 0.0
        high = 1.0 / self.ci_low if self.ci_low else math.inf
        return (low, high)

    @property
    def detail_fraction(self) -> float:
        return self.detailed_insts / self.total_insts if self.total_insts else 0.0

    def brief(self) -> dict:
        """Small JSON-safe summary (checkpoint rows, bench records)."""
        ipc_lo, ipc_hi = self.ipc_ci
        return {
            "policy": self.policy,
            "intervals": self.intervals,
            "total_insts": self.total_insts,
            "detailed_insts": self.detailed_insts,
            "detailed_cycles": self.detailed_cycles,
            "ipc": self.ipc,
            "ipc_ci95": [ipc_lo, ipc_hi],
        }

    def summary(self) -> str:
        ipc_lo, ipc_hi = self.ipc_ci
        return (
            f"sampled[{self.policy}] IPC={self.ipc:.3f} "
            f"(95% CI {ipc_lo:.3f}..{ipc_hi:.3f}) "
            f"estCycles={self.est_cycles} "
            f"intervals={self.intervals} "
            f"detail={self.detailed_insts}/{self.total_insts} insts "
            f"({self.detail_fraction:.1%}) detailedCycles={self.detailed_cycles}"
        )


def estimate_from_intervals(
    intervals: list[Interval],
    stats_list: list[SimStats],
    total_insts: int,
    *,
    policy: str = "smarts",
) -> SampledEstimate:
    """Build the whole-run estimate from per-interval detailed stats."""
    if len(intervals) != len(stats_list) or not intervals:
        raise ValueError(
            f"need one stats per interval, got {len(stats_list)} stats "
            f"for {len(intervals)} intervals"
        )
    cpis = []
    weights = []
    for interval, stats in zip(intervals, stats_list):
        if not stats.retired:
            raise ValueError(f"interval {interval.index} retired 0 instructions")
        cpis.append(stats.cycles / stats.retired)
        weights.append(interval.weight * stats.retired)
    wsum = sum(weights)
    cpi = sum(w * c for w, c in zip(weights, cpis)) / wsum
    n = len(cpis)
    if n > 1:
        variance = (
            sum(w * (c - cpi) ** 2 for w, c in zip(weights, cpis))
            / wsum
            * n
            / (n - 1)
        )
        stderr = math.sqrt(variance / n)
    else:
        stderr = 0.0
    half = t_critical(n - 1) * stderr
    merged = SimStats.merge(stats_list)
    # Extrapolate: interval i stands for a (weight-proportional) share of
    # the full run; scale its counters to that share before merging.
    scaled_parts = []
    for weight, stats in zip(weights, stats_list):
        represented = (weight / wsum) * total_insts
        scaled_parts.append(stats.scaled(represented / stats.retired))
    extrapolated = SimStats.merge(scaled_parts)
    extrapolated.retired = total_insts
    extrapolated.cycles = round(cpi * total_insts)
    return SampledEstimate(
        policy=policy,
        total_insts=total_insts,
        detailed_insts=merged.retired,
        detailed_cycles=merged.cycles,
        intervals=n,
        cpi=cpi,
        cpi_stderr=stderr,
        ci_low=cpi - half,
        ci_high=cpi + half,
        stats=merged,
        extrapolated=extrapolated,
    )
