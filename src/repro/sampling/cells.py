"""Interval-parallel sampled execution over the repro.parallel pool.

One sampled workload run fans out into one :class:`~repro.parallel.cellkey.
CellSpec` per detailed interval. Interval cells are first-class cells: they
flow through :func:`~repro.parallel.executor.run_cells`, land in the
content-addressed result cache under a key that includes the interval and
warmup recipe, and distribute over the process pool exactly like full-run
cells. The per-parent results are then combined deterministically (input
order, pure arithmetic), so pooled execution is bit-identical to serial —
guarded by ``tests/parallel/test_sampled_cells.py``.

Every interval cell warms ``[0, start)`` from scratch inside its worker;
warmup is functional (cheap) while detail is cycle-accurate (expensive),
which is the SMARTS trade that makes the fan-out profitable.
"""

from __future__ import annotations

from dataclasses import replace

from ..parallel.cellkey import CellSpec, cell_key
from ..parallel.executor import (
    STATUS_DONE,
    STATUS_FAILED,
    CellResult,
    PoolStats,
    run_cells,
)
from .estimate import estimate_from_intervals
from .intervals import Interval, SamplingPlan
from .sampler import plan_for_trace


def expand_spec(spec: CellSpec, plan: SamplingPlan) -> tuple[list[Interval], list[CellSpec], int, tuple[int, ...]]:
    """Plan one parent spec's intervals and build its interval cells.

    Returns ``(intervals, interval_specs, total_insts, critical_pcs)``.
    In ``crisp`` mode with no explicit annotation the FDO flow runs once
    *here* (driver side) and the derived PCs are embedded in every interval
    cell, instead of re-deriving them per interval in each worker.
    """
    from ..workloads import get_workload

    if spec.interval is not None:
        raise ValueError(f"spec {spec.label()} already carries an interval")
    workload = get_workload(spec.workload, variant=spec.variant, scale=spec.scale)
    trace = workload.trace()
    critical = spec.critical_pcs
    if spec.mode == "crisp" and critical is None:
        from ..core.fdo import run_crisp_flow

        flow = run_crisp_flow(
            spec.workload,
            spec.crisp_config,
            core_config=spec.core_config(),
            scale=spec.scale,
        )
        critical = tuple(sorted(flow.critical_pcs))
    intervals = plan_for_trace(plan, trace)
    interval_specs = [
        replace(
            spec,
            interval=(iv.start, iv.end),
            warmup="functional",
            critical_pcs=critical,
        )
        for iv in intervals
    ]
    return intervals, interval_specs, len(trace.insts), tuple(critical or ())


def run_cells_sampled(
    specs: list[CellSpec],
    plan: SamplingPlan,
    *,
    jobs: int = 1,
    cache=None,
    retries: int = 1,
    policy=None,
    stats: PoolStats | None = None,
    on_result=None,
) -> list[CellResult]:
    """Run every spec sampled per ``plan``; results in input order.

    Same contract as :func:`~repro.parallel.executor.run_cells`, but each
    returned :class:`CellResult` is a synthesized whole-run view: ``ipc``
    is the sampled estimate, ``stats`` the extrapolated full-run-shaped
    counters, and ``estimate`` the full
    :class:`~repro.sampling.estimate.SampledEstimate`. All parents'
    interval cells run through one ``run_cells`` call, so the pool stays
    busy across parents.
    """
    if plan.off:
        return run_cells(
            list(specs), jobs=jobs, cache=cache, retries=retries,
            policy=policy, stats=stats, on_result=on_result,
        )
    parents = []
    interval_specs: list[CellSpec] = []
    for spec in specs:
        if spec.corun is not None or spec.smt is not None:
            # Composite cells (co-run / SMT) have no interval form — the
            # whole run *is* the cell. They ride the same pooled run_cells
            # call unsampled and pass through to the results untouched.
            parents.append((spec, None, 0, (), len(interval_specs)))
            interval_specs.append(spec)
            continue
        intervals, children, total_insts, critical = expand_spec(spec, plan)
        parents.append((spec, intervals, total_insts, critical, len(interval_specs)))
        interval_specs.extend(children)

    child_results = run_cells(
        interval_specs, jobs=jobs, cache=cache, retries=retries,
        policy=policy, stats=stats,
    )

    results: list[CellResult] = []
    for spec, intervals, total_insts, critical, offset in parents:
        if intervals is None:
            # Composite pass-through: the single child is the whole cell.
            result = child_results[offset]
            if on_result is not None:
                on_result(result)
            results.append(result)
            continue
        children = child_results[offset:offset + len(intervals)]
        key = f"sampled:{plan.token()}:{cell_key(spec)}"
        attempts = max((r.attempts for r in children), default=0)
        failed = [r for r in children if not r.ok]
        if failed:
            first = failed[0]
            result = CellResult(
                spec=spec,
                key=key,
                status=STATUS_FAILED,
                attempts=attempts,
                error=first.error,
                error_type=first.error_type,
                crash_bundle=first.crash_bundle,
            )
        else:
            estimate = estimate_from_intervals(
                intervals,
                [r.require_stats() for r in children],
                total_insts,
                policy=plan.policy,
            )
            result = CellResult(
                spec=spec,
                key=key,
                status=STATUS_DONE,
                attempts=attempts,
                from_cache=bool(children) and all(r.from_cache for r in children),
                ipc=estimate.ipc,
                stats=estimate.extrapolated,
                critical_pcs=critical,
                estimate=estimate,
            )
        if on_result is not None:
            on_result(result)
        results.append(result)
    return results
