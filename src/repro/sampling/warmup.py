"""Functional warmup of long-lived microarchitectural state.

Skipping trace regions in sampled simulation is only sound if the state
with long history — cache tags/LRU, TAGE tables and folded histories, BTB
targets, the RAS, prefetcher tables — reflects the skipped instructions
when the detailed interval starts. :class:`FunctionalWarmer` replays the
skipped region *without timing*: every instruction fetch, branch outcome,
load, store, and software prefetch is applied to the same structures in
the same program order the detailed pipeline would apply them, on a
synthetic clock that advances far enough per instruction that every lazy
fill lands before the next access.

Fidelity (guarded by ``tests/sampling/test_warmup.py``): for serial
workloads with hardware prefetchers disabled, warming over a region leaves
cache content/LRU order, predictor tables, BTB, and RAS byte-identical to
detailed simulation of the same region — branch-predictor and i-side
updates happen at fetch in trace order in the pipeline, and d-side
accesses of a serial dependence chain issue in program order. With
prefetchers or deep OOO overlap the warmed state is an approximation (the
standard SMARTS trade-off); store-forwarded loads are assumed forwarded
and skip the hierarchy.

The module also provides the canonical *state digests* the fidelity test
asserts on; they work on a warmer and a pipeline alike.
"""

from __future__ import annotations

import hashlib

from ..frontend.btb import Btb
from ..frontend.ras import ReturnAddressStack
from ..frontend.simple_predictors import make_predictor
from ..memory.hierarchy import MemoryHierarchy
from ..uarch.config import CoreConfig

#: Synthetic cycles between warmed instructions: larger than any DRAM
#: round-trip, so every fill issued by instruction i is resident before
#: instruction i+1 probes (matching a serial detailed execution).
CLOCK_STRIDE = 8192


class FunctionalWarmer:
    """Replays a trace region to warm caches, predictors, BTB, and RAS.

    Construct with the same program / core config / annotation as the
    detailed interval (the annotation changes the code layout, so warmed
    i-side state must see the same byte addresses), ``warm()`` over the
    skipped region, ``finish()`` to drain in-flight fills and zero the
    warmup-era counters, then hand :meth:`components` to
    :class:`~repro.uarch.pipeline.Pipeline` as pre-warmed structures.
    """

    def __init__(
        self,
        program,
        config: CoreConfig | None = None,
        *,
        critical_pcs: frozenset[int] | set[int] = frozenset(),
    ):
        self.config = config or CoreConfig.skylake()
        cfg = self.config
        self.layout = program.layout(frozenset(critical_pcs))
        self.hierarchy = MemoryHierarchy(cfg.hierarchy)
        self.predictor = make_predictor(cfg.predictor)
        self.btb = Btb(cfg.btb_entries)
        self.ras = ReturnAddressStack(cfg.ras_depth)
        self.clock = 0
        self.warmed_insts = 0
        self._last_line = -1

    # -- replay ---------------------------------------------------------------

    def warm(self, trace, start: int = 0, end: int | None = None) -> None:
        """Functionally apply trace positions ``[start, end)``."""
        insts = trace.insts
        if end is None:
            end = len(insts)
        hier = self.hierarchy
        addrs = self.layout.addresses
        sizes = self.layout.sizes
        line_mask = ~(hier.config.line_bytes - 1)
        for pos in range(start, end):
            d = insts[pos]
            self.clock += CLOCK_STRIDE
            now = self.clock
            pc_addr = addrs[d.pc]
            end_addr = pc_addr + sizes[d.pc] - 1
            # Instruction side: same per-line probing as pipeline fetch.
            for probe in (pc_addr & line_mask, end_addr & line_mask):
                if probe != self._last_line:
                    hier.inst_fetch(probe, now)
                    self._last_line = probe
            sinst = d.sinst
            if sinst.is_branch:
                self._train_branch(trace, pos, d, sinst, pc_addr)
            if sinst.is_load:
                # Loads with an in-trace producing store are assumed
                # store-forwarded (the overwhelmingly common detailed-sim
                # outcome) and do not touch the hierarchy.
                if d.mem_src < 0:
                    hier.load(pc_addr, d.addr, now)
            elif sinst.is_store:
                hier.store(pc_addr, d.addr, now)
            elif sinst.is_prefetch:
                hier.software_prefetch(pc_addr, d.addr, now)
        self.warmed_insts += max(0, end - start)

    def _train_branch(self, trace, pos, d, sinst, pc_addr) -> None:
        """Mirror ``Pipeline._predict_branch`` state updates (sans stats)."""
        addrs = self.layout.addresses
        if sinst.is_cond_branch:
            predicted = self.predictor.predict(pc_addr, d.taken)
            self.predictor.update(pc_addr, d.taken)
            # On a mispredict (or a correct not-taken) the pipeline returns
            # before touching the BTB.
            if predicted != d.taken or not d.taken:
                return
            self.btb.lookup(pc_addr)
            self.btb.update(pc_addr, addrs[trace.pc_after(pos)])
            return
        self.predictor.note_branch(True)
        if sinst.is_ret:
            self.ras.pop()
            return
        if sinst.is_call:
            self.ras.push(addrs[sinst.idx + 1])
        self.btb.lookup(pc_addr)
        self.btb.update(pc_addr, addrs[trace.pc_after(pos)])

    # -- handoff --------------------------------------------------------------

    def finish(self) -> "FunctionalWarmer":
        """Drain in-flight fills and zero warmup-era statistics.

        The injected structures must carry warmed *state* but clean
        *counters*: the detailed interval's stats start from zero, so the
        per-interval SimStats stay exact.
        """
        self.clock += 4 * CLOCK_STRIDE
        hier = self.hierarchy
        hier._advance(self.clock)
        # Rebase absolute-time state to cycle 0: the detailed pipeline that
        # inherits these structures starts its own clock from scratch, and a
        # hierarchy whose reservations sit at warmup-era timestamps would
        # never complete its fills. Content state (cache lines, LRU ticks,
        # open DRAM rows, predictor tables) is what warming is for and is
        # untouched; the in-flight sets are empty after the drain above.
        hier.last_advance = 0
        hier.mshr._pending.clear()
        hier._pending_pf.clear()
        hier._pending_inst.clear()
        hier.dram._bank_free = [0] * len(hier.dram._bank_free)
        hier.dram._bus_free = 0
        for cache in (hier.l1i, hier.l1d, hier.llc):
            cache.reset_stats()
        hier.mshr.stats = type(hier.mshr.stats)()
        hier.dram.reset_stats()
        self.predictor.stats = type(self.predictor.stats)()
        self.btb.stats = type(self.btb.stats)()
        self.ras.stats = type(self.ras.stats)()
        return self

    def components(self) -> dict:
        """Keyword arguments for ``Pipeline(..., **warmer.components())``."""
        return {
            "hierarchy": self.hierarchy,
            "predictor": self.predictor,
            "btb": self.btb,
            "ras": self.ras,
        }

    def digest(self) -> str:
        return state_digest(self.hierarchy, self.predictor, self.btb, self.ras)


# -- state digests -------------------------------------------------------------
#
# Canonical, timing-free views of the long-lived state: content in recency
# order rather than raw tick values, since logical tick counters advance at
# different rates under warmup and detailed simulation.


def cache_state(cache) -> list[list[int]]:
    """Per-set resident lines in LRU→MRU order."""
    return [
        [line for line, _ in sorted(cache_set.items(), key=lambda kv: kv[1])]
        for cache_set in cache._sets
    ]


def btb_state(btb) -> list[list[tuple[int, int]]]:
    """Per-set (pc, target) entries in LRU→MRU order."""
    return [
        [(pc, target) for pc, (target, _) in sorted(s.items(), key=lambda kv: kv[1][1])]
        for s in btb._sets
    ]


def ras_state(ras) -> list[int]:
    return list(ras._stack)


def predictor_state(predictor) -> list:
    """All persistent predictor state, excluding stats and transients."""
    state = []
    for key in sorted(vars(predictor)):
        if key in ("stats", "_last"):
            continue
        state.append((key, _canon(getattr(predictor, key))))
    return state


def _canon(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, dict):
        return sorted((str(k), _canon(v)) for k, v in value.items())
    if hasattr(value, "value"):  # _FoldedHistory: only .value is dynamic
        return _canon(value.value)
    return repr(value)


def state_digest(hierarchy, predictor, btb, ras, *, drain: bool = True) -> str:
    """One hex digest over all warmed state; equal digests == equal state.

    ``drain`` first applies every in-flight fill (prefetches, i-misses,
    MSHR entries) far in the future, so a pipeline that stopped mid-fill
    and a warmer compare on settled state.
    """
    if drain:
        hierarchy._advance(hierarchy.last_advance + (1 << 40))
    payload = repr(
        {
            "l1i": cache_state(hierarchy.l1i),
            "l1d": cache_state(hierarchy.l1d),
            "llc": cache_state(hierarchy.llc),
            "predictor": predictor_state(predictor),
            "btb": btb_state(btb),
            "ras": ras_state(ras),
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def pipeline_state_digest(pipeline, *, drain: bool = True) -> str:
    """Digest of a pipeline's warmed state (same shape as a warmer's)."""
    return state_digest(
        pipeline.hierarchy, pipeline.predictor, pipeline.btb, pipeline.ras,
        drain=drain,
    )
