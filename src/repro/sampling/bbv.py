"""Basic-block vectors and a pure-python k-means for SimPoint selection.

A basic-block vector (BBV) summarises one trace interval as "how often did
execution enter each static basic block" — the program-phase fingerprint
SimPoint clusters on. Everything here is deterministic: leaders come from
static control flow, vectors from exact dynamic counts, and k-means uses
evenly spaced initial centroids (no RNG), so the same trace and plan always
select the same representative intervals — a requirement for the
content-addressed interval cells of :mod:`repro.sampling.cells`.
"""

from __future__ import annotations

import math


def block_leaders(program) -> tuple[int, ...]:
    """Static basic-block leader PCs: entry, branch targets, fall-throughs."""
    leaders = {0}
    for inst in program:
        if inst.is_branch:
            if inst.target is not None:
                leaders.add(inst.target)
            if inst.idx + 1 < len(program):
                leaders.add(inst.idx + 1)
    return tuple(sorted(leaders))


def bbv(trace, start: int, end: int, leaders: tuple[int, ...]) -> dict[int, int]:
    """Block-entry counts for trace positions ``[start, end)``."""
    leader_set = set(leaders)
    counts: dict[int, int] = {}
    insts = trace.insts
    for pos in range(start, end):
        pc = insts[pos].pc
        if pc in leader_set:
            counts[pc] = counts.get(pc, 0) + 1
    return counts


def normalize(vector: dict[int, int]) -> dict[int, float]:
    """Scale a count vector to unit L1 norm (interval length independent)."""
    total = sum(vector.values())
    if not total:
        return {}
    return {key: count / total for key, count in vector.items()}


def _densify(vectors: list[dict]) -> tuple[list[int], list[list[float]]]:
    keys = sorted({key for vec in vectors for key in vec})
    dense = [[float(vec.get(key, 0)) for key in keys] for vec in vectors]
    return keys, dense


def _distance2(a: list[float], b: list[float]) -> float:
    return sum((x - y) * (x - y) for x, y in zip(a, b))


def kmeans(
    vectors: list[dict], k: int, *, max_iter: int = 50
) -> tuple[list[int], list[list[float]]]:
    """Deterministic Lloyd k-means over sparse vectors.

    Returns ``(assignments, centroids)`` with ``assignments[i]`` the
    cluster of ``vectors[i]``. Initial centroids are the vectors at evenly
    spaced indices (deterministic; no RNG to seed or leak). ``k`` is
    clamped to the number of vectors.
    """
    n = len(vectors)
    if n == 0:
        return [], []
    k = max(1, min(k, n))
    _, dense = _densify(vectors)
    centroids = [list(dense[(i * n) // k]) for i in range(k)]
    assignments = [-1] * n
    for _ in range(max_iter):
        changed = False
        for i, vec in enumerate(dense):
            best = min(
                range(k), key=lambda c: (_distance2(vec, centroids[c]), c)
            )
            if best != assignments[i]:
                assignments[i] = best
                changed = True
        if not changed:
            break
        for c in range(k):
            members = [dense[i] for i in range(n) if assignments[i] == c]
            if not members:
                continue  # empty cluster keeps its previous centroid
            dim = len(members[0])
            centroids[c] = [
                sum(m[d] for m in members) / len(members) for d in range(dim)
            ]
    return assignments, centroids


def euclidean(a: dict, b: dict) -> float:
    """Distance between two sparse vectors (used by tests/diagnostics)."""
    keys = set(a) | set(b)
    return math.sqrt(sum((a.get(key, 0.0) - b.get(key, 0.0)) ** 2 for key in keys))
