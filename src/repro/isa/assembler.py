"""Label-based assembler DSL for building mini-ISA programs.

All workloads in :mod:`repro.workloads` are written against this builder so
they read like assembly listings (compare Figure 3 in the paper)::

    a = Asm()
    a.label("loop")
    a.load("r2", "r1", 0)          # r2 <- MEM[r1 + 0]   (next pointer)
    a.load("r3", "r1", 8)          # r3 <- MEM[r1 + 8]   (node value)
    a.mov("r1", "r2")
    a.bne("r1", "r0", "loop")
    a.halt()
    program = a.build()

Branch targets may be forward references; they are resolved in
:meth:`Asm.build`.
"""

from __future__ import annotations

from .instruction import StaticInst
from .opcodes import Opcode
from .program import Program, ProgramError
from .registers import parse_reg

Reg = str | int


class Asm:
    """Incremental program builder with label fixups."""

    def __init__(self):
        self._insts: list[StaticInst] = []
        self._labels: dict[str, int] = {}
        self._fixups: list[tuple[int, str]] = []  # (inst index, label name)

    # -- infrastructure ------------------------------------------------------

    def label(self, name: str) -> "Asm":
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise ProgramError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insts)
        return self

    def _emit(
        self,
        opcode: Opcode,
        dst: Reg | None = None,
        src1: Reg | None = None,
        src2: Reg | None = None,
        imm: int = 0,
        target: str | None = None,
    ) -> "Asm":
        idx = len(self._insts)
        inst = StaticInst(
            idx,
            opcode,
            dst=None if dst is None else parse_reg(dst),
            src1=None if src1 is None else parse_reg(src1),
            src2=None if src2 is None else parse_reg(src2),
            imm=imm,
        )
        self._insts.append(inst)
        if target is not None:
            self._fixups.append((idx, target))
        return self

    def build(self) -> Program:
        """Resolve labels and return the validated :class:`Program`."""
        for idx, name in self._fixups:
            if name not in self._labels:
                raise ProgramError(f"undefined label {name!r}")
            self._insts[idx].target = self._labels[name]
        return Program(self._insts, self._labels)

    def here(self) -> int:
        """Current instruction index (useful for size accounting in tests)."""
        return len(self._insts)

    # -- moves and ALU -------------------------------------------------------

    def movi(self, rd: Reg, imm: int) -> "Asm":
        return self._emit(Opcode.MOVI, dst=rd, imm=imm)

    def mov(self, rd: Reg, rs: Reg) -> "Asm":
        return self._emit(Opcode.MOV, dst=rd, src1=rs)

    def add(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self._emit(Opcode.ADD, dst=rd, src1=rs1, src2=rs2)

    def sub(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self._emit(Opcode.SUB, dst=rd, src1=rs1, src2=rs2)

    def mul(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self._emit(Opcode.MUL, dst=rd, src1=rs1, src2=rs2)

    def div(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self._emit(Opcode.DIV, dst=rd, src1=rs1, src2=rs2)

    def and_(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self._emit(Opcode.AND, dst=rd, src1=rs1, src2=rs2)

    def or_(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self._emit(Opcode.OR, dst=rd, src1=rs1, src2=rs2)

    def xor(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self._emit(Opcode.XOR, dst=rd, src1=rs1, src2=rs2)

    def shl(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self._emit(Opcode.SHL, dst=rd, src1=rs1, src2=rs2)

    def shr(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self._emit(Opcode.SHR, dst=rd, src1=rs1, src2=rs2)

    def addi(self, rd: Reg, rs: Reg, imm: int) -> "Asm":
        return self._emit(Opcode.ADDI, dst=rd, src1=rs, imm=imm)

    def subi(self, rd: Reg, rs: Reg, imm: int) -> "Asm":
        return self._emit(Opcode.SUBI, dst=rd, src1=rs, imm=imm)

    def muli(self, rd: Reg, rs: Reg, imm: int) -> "Asm":
        return self._emit(Opcode.MULI, dst=rd, src1=rs, imm=imm)

    def andi(self, rd: Reg, rs: Reg, imm: int) -> "Asm":
        return self._emit(Opcode.ANDI, dst=rd, src1=rs, imm=imm)

    def xori(self, rd: Reg, rs: Reg, imm: int) -> "Asm":
        return self._emit(Opcode.XORI, dst=rd, src1=rs, imm=imm)

    def shli(self, rd: Reg, rs: Reg, imm: int) -> "Asm":
        return self._emit(Opcode.SHLI, dst=rd, src1=rs, imm=imm)

    def shri(self, rd: Reg, rs: Reg, imm: int) -> "Asm":
        return self._emit(Opcode.SHRI, dst=rd, src1=rs, imm=imm)

    def fadd(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self._emit(Opcode.FADD, dst=rd, src1=rs1, src2=rs2)

    def fmul(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self._emit(Opcode.FMUL, dst=rd, src1=rs1, src2=rs2)

    def fdiv(self, rd: Reg, rs1: Reg, rs2: Reg) -> "Asm":
        return self._emit(Opcode.FDIV, dst=rd, src1=rs1, src2=rs2)

    # -- memory ---------------------------------------------------------------

    def load(self, rd: Reg, base: Reg, imm: int = 0) -> "Asm":
        return self._emit(Opcode.LOAD, dst=rd, src1=base, imm=imm)

    def load_idx(self, rd: Reg, base: Reg, index: Reg, imm: int = 0) -> "Asm":
        return self._emit(Opcode.LOAD_IDX, dst=rd, src1=base, src2=index, imm=imm)

    def store(self, base: Reg, value: Reg, imm: int = 0) -> "Asm":
        return self._emit(Opcode.STORE, dst=value, src1=base, imm=imm)

    def store_idx(self, base: Reg, index: Reg, value: Reg, imm: int = 0) -> "Asm":
        return self._emit(Opcode.STORE_IDX, dst=value, src1=base, src2=index, imm=imm)

    def prefetch(self, base: Reg, imm: int = 0) -> "Asm":
        return self._emit(Opcode.PREFETCH, src1=base, imm=imm)

    # -- control flow ----------------------------------------------------------

    def beq(self, rs1: Reg, rs2: Reg, target: str) -> "Asm":
        return self._emit(Opcode.BEQ, src1=rs1, src2=rs2, target=target)

    def bne(self, rs1: Reg, rs2: Reg, target: str) -> "Asm":
        return self._emit(Opcode.BNE, src1=rs1, src2=rs2, target=target)

    def blt(self, rs1: Reg, rs2: Reg, target: str) -> "Asm":
        return self._emit(Opcode.BLT, src1=rs1, src2=rs2, target=target)

    def bge(self, rs1: Reg, rs2: Reg, target: str) -> "Asm":
        return self._emit(Opcode.BGE, src1=rs1, src2=rs2, target=target)

    def ble(self, rs1: Reg, rs2: Reg, target: str) -> "Asm":
        return self._emit(Opcode.BLE, src1=rs1, src2=rs2, target=target)

    def bgt(self, rs1: Reg, rs2: Reg, target: str) -> "Asm":
        return self._emit(Opcode.BGT, src1=rs1, src2=rs2, target=target)

    def jmp(self, target: str) -> "Asm":
        return self._emit(Opcode.JMP, target=target)

    def call(self, target: str) -> "Asm":
        return self._emit(Opcode.CALL, target=target)

    def ret(self) -> "Asm":
        return self._emit(Opcode.RET)

    # -- misc -------------------------------------------------------------------

    def nop(self) -> "Asm":
        return self._emit(Opcode.NOP)

    def halt(self) -> "Asm":
        return self._emit(Opcode.HALT)
