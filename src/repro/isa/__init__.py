"""Mini-ISA substrate: opcodes, programs, assembler, functional emulator."""

from .assembler import Asm
from .emulator import EmulationError, EmulationLimitError, ExecutionTrace, execute
from .instruction import DynInst, StaticInst
from .opcodes import FuClass, Opcode, OpInfo, info
from .program import CODE_BASE, CRITICAL_PREFIX_BYTES, CodeLayout, Program, ProgramError
from .registers import FP, NUM_REGS, SP, parse_reg, reg_name

__all__ = [
    "Asm",
    "CODE_BASE",
    "CRITICAL_PREFIX_BYTES",
    "CodeLayout",
    "DynInst",
    "EmulationError",
    "EmulationLimitError",
    "ExecutionTrace",
    "FP",
    "FuClass",
    "NUM_REGS",
    "Opcode",
    "OpInfo",
    "Program",
    "ProgramError",
    "SP",
    "StaticInst",
    "execute",
    "info",
    "parse_reg",
    "reg_name",
]
