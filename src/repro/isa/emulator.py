"""Functional emulator: executes a program and records a dynamic trace.

The emulator is the reproduction's stand-in for running the real binary.
Its output, an :class:`ExecutionTrace`, plays two roles:

1. It is the *dynamic instruction stream* the cycle-level timing model
   (:mod:`repro.uarch.pipeline`) replays, including effective addresses and
   branch outcomes.
2. It is the *instruction trace with memory dependencies* that CRISP's
   software slice extraction consumes (the paper uses DynamoRIO memtrace, or
   Intel PT with PTWrite for memory dependencies -- Section 3.3).

Dependencies are recorded exactly: for every dynamic instruction we store
the sequence numbers of the dynamic producers of each register source, and
for loads additionally the producing store (``mem_src``), which is how
dependencies flow *through memory* -- e.g. a value spilled to the stack and
reloaded, the case that defeats register-only hardware IBDA (Figure 3,
line 31 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .instruction import DynInst, StaticInst
from .opcodes import (
    ALU_FUNCTIONS,
    BRANCH_CONDITIONS,
    IMMEDIATE_ALU_OPS,
    Opcode,
)
from .program import Program
from .registers import NUM_REGS


class EmulationError(Exception):
    """Raised on illegal execution (bad PC, stack underflow)."""


class EmulationLimitError(EmulationError):
    """Raised when the dynamic instruction limit is exceeded."""


@dataclass
class ExecutionTrace:
    """The result of functionally executing a program.

    ``insts`` is the full dynamic instruction stream in program order.
    """

    program: Program
    insts: list[DynInst]
    final_regs: list[int]
    halted: bool
    exec_counts: dict[int, int] = field(default_factory=dict)
    # Lazy per-PC index: pc -> positions in ``insts``. Built on the first
    # ``instances_of`` call (one scan) and shared with ``dynamic_count``,
    # so repeated per-PC queries never rescan the dynamic stream.
    _pc_index: dict[int, list[int]] | None = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.insts)

    def __iter__(self):
        return iter(self.insts)

    def __getitem__(self, seq: int) -> DynInst:
        return self.insts[seq]

    def pc_index(self) -> dict[int, list[int]]:
        """The per-PC position index, built lazily on first use."""
        if self._pc_index is None:
            index: dict[int, list[int]] = {}
            for pos, d in enumerate(self.insts):
                index.setdefault(d.pc, []).append(pos)
            self._pc_index = index
        return self._pc_index

    def dynamic_count(self, pc: int) -> int:
        """Number of times static instruction ``pc`` executed."""
        if self.exec_counts:
            return self.exec_counts.get(pc, 0)
        # Hand-built traces (tests) may omit exec_counts; fall back to the
        # same lazy index instances_of uses.
        return len(self.pc_index().get(pc, ()))

    def instances_of(self, pc: int) -> list[DynInst]:
        """All dynamic instances of static instruction ``pc`` (in order)."""
        insts = self.insts
        return [insts[pos] for pos in self.pc_index().get(pc, ())]

    def pc_after(self, seq: int) -> int:
        """Static PC of the instruction that follows position ``seq``.

        Sampled simulation replays sub-ranges of a trace; a
        :class:`~repro.sampling.intervals.TraceSlice` overrides this to
        answer for its boundary instruction from the parent trace.
        """
        return self.insts[seq + 1].pc


def execute(
    program: Program,
    *,
    regs: dict[int, int] | None = None,
    memory: dict[int, int] | None = None,
    max_insts: int = 5_000_000,
) -> ExecutionTrace:
    """Functionally execute ``program`` and return its dynamic trace.

    Parameters
    ----------
    regs:
        Initial architectural register values, ``{reg_index: value}``.
    memory:
        Initial memory image keyed by *word* address (byte address >> 3).
        The dict is not mutated; a copy is used internally.
    max_insts:
        Safety bound on the number of dynamic instructions.
    """
    reg_file = [0] * NUM_REGS
    for idx, value in (regs or {}).items():
        reg_file[idx] = value
    mem: dict[int, int] = dict(memory or {})

    # Producer tracking for dependence links.
    reg_writer = [-1] * NUM_REGS
    mem_writer: dict[int, int] = {}

    trace: list[DynInst] = []
    exec_counts: dict[int, int] = {}
    call_stack: list[int] = []
    pc = 0
    n = len(program)
    halted = False

    while True:
        if not 0 <= pc < n:
            raise EmulationError(f"PC out of range: {pc}")
        if len(trace) >= max_insts:
            raise EmulationLimitError(
                f"dynamic instruction limit ({max_insts}) exceeded at pc={pc}"
            )
        sinst: StaticInst = program[pc]
        op = sinst.opcode
        seq = len(trace)
        exec_counts[pc] = exec_counts.get(pc, 0) + 1

        if op is Opcode.HALT:
            trace.append(DynInst(seq, sinst))
            halted = True
            break

        addr = -1
        taken: bool | None = None
        mem_src = -1
        reg_srcs: tuple[int, ...] = ()
        next_pc = pc + 1

        if op is Opcode.MOVI:
            reg_file[sinst.dst] = sinst.imm
            reg_writer[sinst.dst] = seq
        elif op is Opcode.MOV:
            reg_srcs = (reg_writer[sinst.src1],)
            reg_file[sinst.dst] = reg_file[sinst.src1]
            reg_writer[sinst.dst] = seq
        elif op in ALU_FUNCTIONS:
            a = reg_file[sinst.src1]
            if op in IMMEDIATE_ALU_OPS:
                b = sinst.imm
                reg_srcs = (reg_writer[sinst.src1],)
            else:
                b = reg_file[sinst.src2]
                reg_srcs = (reg_writer[sinst.src1], reg_writer[sinst.src2])
            reg_file[sinst.dst] = ALU_FUNCTIONS[op](a, b)
            reg_writer[sinst.dst] = seq
        elif op is Opcode.LOAD or op is Opcode.LOAD_IDX:
            addr = reg_file[sinst.src1] + sinst.imm
            if op is Opcode.LOAD_IDX:
                addr += reg_file[sinst.src2]
                reg_srcs = (reg_writer[sinst.src1], reg_writer[sinst.src2])
            else:
                reg_srcs = (reg_writer[sinst.src1],)
            word = addr >> 3
            mem_src = mem_writer.get(word, -1)
            reg_file[sinst.dst] = mem.get(word, 0)
            reg_writer[sinst.dst] = seq
        elif op is Opcode.STORE or op is Opcode.STORE_IDX:
            addr = reg_file[sinst.src1] + sinst.imm
            if op is Opcode.STORE_IDX:
                addr += reg_file[sinst.src2]
                reg_srcs = (
                    reg_writer[sinst.src1],
                    reg_writer[sinst.src2],
                    reg_writer[sinst.dst],
                )
            else:
                reg_srcs = (reg_writer[sinst.src1], reg_writer[sinst.dst])
            word = addr >> 3
            mem[word] = reg_file[sinst.dst]
            mem_writer[word] = seq
        elif op is Opcode.PREFETCH:
            addr = reg_file[sinst.src1] + sinst.imm
            reg_srcs = (reg_writer[sinst.src1],)
        elif op in BRANCH_CONDITIONS:
            a = reg_file[sinst.src1]
            b = reg_file[sinst.src2]
            reg_srcs = (reg_writer[sinst.src1], reg_writer[sinst.src2])
            taken = BRANCH_CONDITIONS[op](a, b)
            if taken:
                next_pc = sinst.target
        elif op is Opcode.JMP:
            taken = True
            next_pc = sinst.target
        elif op is Opcode.CALL:
            taken = True
            call_stack.append(pc + 1)
            next_pc = sinst.target
        elif op is Opcode.RET:
            taken = True
            if not call_stack:
                raise EmulationError(f"RET with empty call stack at pc={pc}")
            next_pc = call_stack.pop()
        elif op is Opcode.NOP:
            pass
        else:  # pragma: no cover - enum is exhaustive
            raise EmulationError(f"unhandled opcode {op}")

        trace.append(DynInst(seq, sinst, addr=addr, taken=taken, reg_srcs=reg_srcs, mem_src=mem_src))
        pc = next_pc

    return ExecutionTrace(
        program=program,
        insts=trace,
        final_regs=reg_file,
        halted=halted,
        exec_counts=exec_counts,
    )
