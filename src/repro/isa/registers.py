"""Architectural register file definition.

Thirty-two general-purpose 64-bit registers, ``r0`` .. ``r31``. There is no
hardwired zero register; all registers are read/write. Two conventional
aliases exist so that workload code reads naturally:

* ``sp`` (= r30) -- stack pointer, used by workloads that spill values
  through memory (the behaviour that defeats register-only IBDA, Section 3.5).
* ``fp`` (= r29) -- frame pointer.
"""

from __future__ import annotations

NUM_REGS = 32

SP = 30
FP = 29

_ALIASES = {"sp": SP, "fp": FP}


def parse_reg(name: str | int) -> int:
    """Parse a register name (``"r7"``, ``"sp"``, or an int) to its index."""
    if isinstance(name, int):
        if not 0 <= name < NUM_REGS:
            raise ValueError(f"register index out of range: {name}")
        return name
    key = name.strip().lower()
    if key in _ALIASES:
        return _ALIASES[key]
    if key.startswith("r"):
        try:
            idx = int(key[1:])
        except ValueError:
            raise ValueError(f"malformed register name: {name!r}") from None
        if 0 <= idx < NUM_REGS:
            return idx
    raise ValueError(f"unknown register: {name!r}")


def reg_name(idx: int) -> str:
    """Return the canonical name for register index ``idx``."""
    if idx == SP:
        return "sp"
    if idx == FP:
        return "fp"
    return f"r{idx}"
