"""Program container and byte-level code layout.

A :class:`Program` is an immutable sequence of :class:`StaticInst` plus a
label table. Code layout (byte addresses) is computed separately by
:meth:`Program.layout` so that the CRISP rewriter can model the one-byte
critical prefix (Section 5.7): laying the same program out with a set of
prefixed PCs shifts every later instruction, changing i-cache line
occupancy, which is exactly the static/dynamic footprint overhead Figure 12
measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from .instruction import StaticInst
from .opcodes import Opcode

#: Byte address at which program code is laid out (matches typical ELF text).
CODE_BASE = 0x400000

#: Extra bytes added to an instruction encoding by the CRISP critical prefix.
CRITICAL_PREFIX_BYTES = 1


class ProgramError(Exception):
    """Raised for malformed programs (bad targets, missing HALT, ...)."""


@dataclass(frozen=True)
class CodeLayout:
    """Byte-level layout of a program, possibly with critical prefixes.

    ``addresses[i]`` and ``sizes[i]`` give the encoded location of static
    instruction ``i``. ``total_bytes`` is the static code footprint.
    """

    addresses: tuple[int, ...]
    sizes: tuple[int, ...]
    total_bytes: int

    def address_of(self, idx: int) -> int:
        return self.addresses[idx]

    def lines_touched(self, idx: int, line_bytes: int = 64) -> tuple[int, ...]:
        """Cache line addresses covered by instruction ``idx``'s encoding."""
        start = self.addresses[idx]
        end = start + self.sizes[idx] - 1
        first = start // line_bytes
        last = end // line_bytes
        return tuple(line * line_bytes for line in range(first, last + 1))


class Program:
    """A validated, immutable program in the mini-ISA."""

    def __init__(self, insts: list[StaticInst], labels: dict[str, int] | None = None):
        self._insts = tuple(insts)
        self.labels = dict(labels or {})
        self._validate()

    def _validate(self) -> None:
        n = len(self._insts)
        if n == 0:
            raise ProgramError("empty program")
        for i, inst in enumerate(self._insts):
            if inst.idx != i:
                raise ProgramError(f"instruction {i} has inconsistent idx {inst.idx}")
            if inst.is_branch and not inst.is_ret:
                if inst.target is None:
                    raise ProgramError(f"branch at {i} has no target")
                if not 0 <= inst.target < n:
                    raise ProgramError(f"branch at {i} targets out-of-range {inst.target}")
        if not any(inst.opcode is Opcode.HALT for inst in self._insts):
            raise ProgramError("program has no HALT")

    def __len__(self) -> int:
        return len(self._insts)

    def __getitem__(self, idx: int) -> StaticInst:
        return self._insts[idx]

    def __iter__(self):
        return iter(self._insts)

    @property
    def insts(self) -> tuple[StaticInst, ...]:
        return self._insts

    def layout(self, critical_pcs: frozenset[int] | set[int] = frozenset()) -> CodeLayout:
        """Compute byte addresses, adding the CRISP prefix to ``critical_pcs``.

        Returns a :class:`CodeLayout`. The baseline layout is obtained with an
        empty ``critical_pcs``.
        """
        addresses = []
        sizes = []
        addr = CODE_BASE
        for inst in self._insts:
            size = inst.size + (CRITICAL_PREFIX_BYTES if inst.idx in critical_pcs else 0)
            addresses.append(addr)
            sizes.append(size)
            addr += size
        return CodeLayout(tuple(addresses), tuple(sizes), addr - CODE_BASE)

    def static_bytes(self, critical_pcs: frozenset[int] | set[int] = frozenset()) -> int:
        """Static code footprint in bytes under the given annotation."""
        return self.layout(critical_pcs).total_bytes

    def disassemble(self) -> str:
        """Human-readable listing (labels + instructions)."""
        by_target = {idx: name for name, idx in self.labels.items()}
        lines = []
        for inst in self._insts:
            if inst.idx in by_target:
                lines.append(f"{by_target[inst.idx]}:")
            lines.append(f"  {inst!r}")
        return "\n".join(lines)
