"""Static and dynamic instruction representations.

A :class:`StaticInst` is one instruction of a program (one per program
counter). A :class:`DynInst` is one executed instance of a static
instruction, produced by the functional emulator, and carries the *data
dependence* links (through registers and through memory) that both the
timing model and the CRISP slicer consume. The memory links are the
capability the paper highlights over hardware IBDA, which can only observe
register dependencies (Section 3.5).
"""

from __future__ import annotations

from .opcodes import FuClass, Opcode, OpInfo, info
from .registers import reg_name


class StaticInst:
    """One static instruction (one PC) of a program.

    Operand conventions:

    * ``dst``  -- destination register, or for stores the *value* register.
    * ``src1`` -- first source register (base register for memory ops).
    * ``src2`` -- second source register (index register for ``*_IDX`` ops),
      or ``None``.
    * ``imm``  -- immediate / displacement.
    * ``target`` -- static index of the branch target (branches only).
    """

    __slots__ = ("idx", "opcode", "dst", "src1", "src2", "imm", "target", "_info")

    def __init__(
        self,
        idx: int,
        opcode: Opcode,
        dst: int | None = None,
        src1: int | None = None,
        src2: int | None = None,
        imm: int = 0,
        target: int | None = None,
    ):
        self.idx = idx
        self.opcode = opcode
        self.dst = dst
        self.src1 = src1
        self.src2 = src2
        self.imm = imm
        self.target = target
        self._info: OpInfo = info(opcode)

    # -- metadata passthrough ------------------------------------------------

    @property
    def fu(self) -> FuClass:
        return self._info.fu

    @property
    def latency(self) -> int:
        return self._info.latency

    @property
    def size(self) -> int:
        return self._info.size

    @property
    def is_load(self) -> bool:
        return self._info.reads_mem

    @property
    def is_store(self) -> bool:
        return self._info.writes_mem

    @property
    def is_mem(self) -> bool:
        return self._info.reads_mem or self._info.writes_mem

    @property
    def is_branch(self) -> bool:
        return self._info.is_branch

    @property
    def is_cond_branch(self) -> bool:
        return self._info.is_cond

    @property
    def is_call(self) -> bool:
        return self.opcode is Opcode.CALL

    @property
    def is_ret(self) -> bool:
        return self.opcode is Opcode.RET

    @property
    def is_prefetch(self) -> bool:
        return self.opcode is Opcode.PREFETCH

    @property
    def writes_reg(self) -> bool:
        return self._info.writes_reg

    def src_regs(self) -> tuple[int, ...]:
        """Architectural registers this instruction reads."""
        srcs = []
        if self.src1 is not None:
            srcs.append(self.src1)
        if self.src2 is not None:
            srcs.append(self.src2)
        if self.is_store and self.dst is not None:
            # Stores read their value operand (held in ``dst``).
            srcs.append(self.dst)
        return tuple(srcs)

    def dst_reg(self) -> int | None:
        """Architectural register this instruction writes, or ``None``."""
        return self.dst if self._info.writes_reg else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.opcode.value]
        if self.dst is not None:
            parts.append(reg_name(self.dst))
        if self.src1 is not None:
            parts.append(reg_name(self.src1))
        if self.src2 is not None:
            parts.append(reg_name(self.src2))
        if self.imm:
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(f"->{self.target}")
        return f"<{self.idx}: {' '.join(parts)}>"


class DynInst:
    """One dynamic (executed) instance of a static instruction.

    ``reg_srcs`` holds the sequence numbers of the dynamic instructions that
    produced each register source operand (``-1`` when the value predates the
    trace). ``mem_src`` is the sequence number of the store that produced the
    loaded value, or ``-1`` when the location was part of the initial memory
    image. ``addr`` is the effective byte address for memory ops.
    """

    __slots__ = ("seq", "sinst", "addr", "taken", "reg_srcs", "mem_src")

    def __init__(
        self,
        seq: int,
        sinst: StaticInst,
        addr: int = -1,
        taken: bool | None = None,
        reg_srcs: tuple[int, ...] = (),
        mem_src: int = -1,
    ):
        self.seq = seq
        self.sinst = sinst
        self.addr = addr
        self.taken = taken
        self.reg_srcs = reg_srcs
        self.mem_src = mem_src

    @property
    def pc(self) -> int:
        """Static index (the PC identity used for profiling and slicing)."""
        return self.sinst.idx

    def producers(self) -> tuple[int, ...]:
        """Sequence numbers of all producers, registers then memory."""
        if self.mem_src >= 0:
            return tuple(s for s in self.reg_srcs if s >= 0) + (self.mem_src,)
        return tuple(s for s in self.reg_srcs if s >= 0)

    def register_producers(self) -> tuple[int, ...]:
        """Sequence numbers of register producers only (what IBDA can see)."""
        return tuple(s for s in self.reg_srcs if s >= 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<dyn {self.seq} pc={self.pc} {self.sinst.opcode.value}>"
