"""Opcode definitions for the mini-ISA used throughout the reproduction.

The paper targets x86, but CRISP itself only needs an ISA with registers,
loads/stores (so dependencies can flow through memory), conditional branches,
and a mix of short- and long-latency arithmetic. This module defines such an
ISA along with the per-opcode metadata the timing model consumes:

* ``FuClass`` -- which functional-unit port pool the op issues to
  (Table 1: 4 ALU, 2 Load, 1 Store).
* ``latency`` -- fixed execution latency in cycles for non-memory ops,
  mirroring published Skylake latencies (Abel & Reineke / Agner Fog, the
  sources the paper cites for its critical-path weights).
* ``size`` -- encoded size in bytes (x86-flavoured, variable length) used to
  lay out code for i-cache modelling; the CRISP prefix adds one byte.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FuClass(enum.Enum):
    """Functional-unit port pool an opcode issues to."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    NONE = "none"  # never reaches the scheduler (e.g. HALT)


class Opcode(enum.Enum):
    """All opcodes of the mini-ISA."""

    # Moves / immediates
    MOVI = "movi"  # rd <- imm
    MOV = "mov"  # rd <- rs1
    # Integer ALU, register-register
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    # Integer ALU, register-immediate
    ADDI = "addi"
    SUBI = "subi"
    MULI = "muli"
    ANDI = "andi"
    XORI = "xori"
    SHLI = "shli"
    SHRI = "shri"
    # Floating-point-class ops (latency class only; values stay integers)
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"
    # Memory
    LOAD = "load"  # rd <- MEM[rs1 + imm]
    LOAD_IDX = "load_idx"  # rd <- MEM[rs1 + rs2 + imm]
    STORE = "store"  # MEM[rs1 + imm] <- rs2
    STORE_IDX = "store_idx"  # MEM[rs1 + rs2 + imm] <- rs3 (encoded via dst)
    PREFETCH = "prefetch"  # non-binding load of MEM[rs1 + imm]
    # Control flow
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLE = "ble"
    BGT = "bgt"
    JMP = "jmp"
    CALL = "call"
    RET = "ret"
    # Misc
    NOP = "nop"
    HALT = "halt"


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    fu: FuClass
    latency: int
    size: int
    reads_mem: bool = False
    writes_mem: bool = False
    is_branch: bool = False
    is_cond: bool = False
    writes_reg: bool = True


_ALU1 = OpInfo(FuClass.ALU, 1, 3)
_ALU1_IMM = OpInfo(FuClass.ALU, 1, 4)

OP_INFO: dict[Opcode, OpInfo] = {
    Opcode.MOVI: OpInfo(FuClass.ALU, 1, 5),
    Opcode.MOV: OpInfo(FuClass.ALU, 1, 3),
    Opcode.ADD: _ALU1,
    Opcode.SUB: _ALU1,
    Opcode.MUL: OpInfo(FuClass.ALU, 3, 4),
    Opcode.DIV: OpInfo(FuClass.ALU, 24, 4),
    Opcode.AND: _ALU1,
    Opcode.OR: _ALU1,
    Opcode.XOR: _ALU1,
    Opcode.SHL: _ALU1,
    Opcode.SHR: _ALU1,
    Opcode.ADDI: _ALU1_IMM,
    Opcode.SUBI: _ALU1_IMM,
    Opcode.MULI: OpInfo(FuClass.ALU, 3, 5),
    Opcode.ANDI: _ALU1_IMM,
    Opcode.XORI: _ALU1_IMM,
    Opcode.SHLI: _ALU1_IMM,
    Opcode.SHRI: _ALU1_IMM,
    Opcode.FADD: OpInfo(FuClass.ALU, 4, 4),
    Opcode.FMUL: OpInfo(FuClass.ALU, 4, 4),
    Opcode.FDIV: OpInfo(FuClass.ALU, 20, 4),
    Opcode.LOAD: OpInfo(FuClass.LOAD, 4, 4, reads_mem=True),
    Opcode.LOAD_IDX: OpInfo(FuClass.LOAD, 4, 5, reads_mem=True),
    Opcode.STORE: OpInfo(FuClass.STORE, 1, 4, writes_mem=True, writes_reg=False),
    Opcode.STORE_IDX: OpInfo(FuClass.STORE, 1, 5, writes_mem=True, writes_reg=False),
    Opcode.PREFETCH: OpInfo(FuClass.LOAD, 1, 4, writes_reg=False),
    Opcode.BEQ: OpInfo(FuClass.ALU, 1, 2, is_branch=True, is_cond=True, writes_reg=False),
    Opcode.BNE: OpInfo(FuClass.ALU, 1, 2, is_branch=True, is_cond=True, writes_reg=False),
    Opcode.BLT: OpInfo(FuClass.ALU, 1, 2, is_branch=True, is_cond=True, writes_reg=False),
    Opcode.BGE: OpInfo(FuClass.ALU, 1, 2, is_branch=True, is_cond=True, writes_reg=False),
    Opcode.BLE: OpInfo(FuClass.ALU, 1, 2, is_branch=True, is_cond=True, writes_reg=False),
    Opcode.BGT: OpInfo(FuClass.ALU, 1, 2, is_branch=True, is_cond=True, writes_reg=False),
    Opcode.JMP: OpInfo(FuClass.ALU, 1, 5, is_branch=True, writes_reg=False),
    Opcode.CALL: OpInfo(FuClass.ALU, 1, 5, is_branch=True, writes_reg=False),
    Opcode.RET: OpInfo(FuClass.ALU, 1, 1, is_branch=True, writes_reg=False),
    Opcode.NOP: OpInfo(FuClass.ALU, 1, 1, writes_reg=False),
    Opcode.HALT: OpInfo(FuClass.NONE, 1, 2, writes_reg=False),
}

#: Conditional branch comparison functions, shared by emulator and tests.
BRANCH_CONDITIONS = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: a < b,
    Opcode.BGE: lambda a, b: a >= b,
    Opcode.BLE: lambda a, b: a <= b,
    Opcode.BGT: lambda a, b: a > b,
}

#: ALU arithmetic semantics (register-register and register-immediate share
#: these; the emulator selects the second operand).
ALU_FUNCTIONS = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: lambda a, b: a // b if b else 0,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << (b & 63),
    Opcode.SHR: lambda a, b: a >> (b & 63),
    Opcode.ADDI: lambda a, b: a + b,
    Opcode.SUBI: lambda a, b: a - b,
    Opcode.MULI: lambda a, b: a * b,
    Opcode.ANDI: lambda a, b: a & b,
    Opcode.XORI: lambda a, b: a ^ b,
    Opcode.SHLI: lambda a, b: a << (b & 63),
    Opcode.SHRI: lambda a, b: a >> (b & 63),
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: lambda a, b: a // b if b else 0,
}

#: Opcodes whose second source operand is the immediate field.
IMMEDIATE_ALU_OPS = frozenset(
    {
        Opcode.ADDI,
        Opcode.SUBI,
        Opcode.MULI,
        Opcode.ANDI,
        Opcode.XORI,
        Opcode.SHLI,
        Opcode.SHRI,
    }
)

#: 64-bit word mask, available to workload builders that need to truncate
#: intermediate values (register values themselves are unbounded Python
#: ints; the emulator does not wrap, and workloads bound their own values
#: with AND where realism requires it).
WORD_MASK = (1 << 64) - 1


def info(op: Opcode) -> OpInfo:
    """Return the :class:`OpInfo` metadata for ``op``."""
    return OP_INFO[op]
