"""Declarative experiment orchestration: Target × Instance × Experiment.

The paper's evaluation is a cross product — workloads × core configs ×
modes × seeds — but each figure script used to re-declare its own slice of
it by hand. This package factors that out (docs/ORCHESTRATION.md), in the
style of instrumentation-infra's Target/Instance split:

* a :class:`Target` is one workload input (name + variant, where the
  variant may be a ``ref#<n>`` seed replica),
* an :class:`Instance` is one way of running it (mode + core config +
  CRISP knobs + explicit annotation),
* an :class:`Experiment` is a named selection over the cross product plus
  a report definition, registered under a stable id.

``python -m repro.orchestrate {list,run,report}`` lowers any selection to
:class:`~repro.parallel.cellkey.CellSpec` cells through the existing
pool/cache/sampling stack (``--jobs``/``--cache-dir``/``--resume``/
``--sample``/``--engine`` compose uniformly), writes per-run result
directories with a manifest recording the full instance identity, and
renders aggregated report tables (median/stdev over seed replicas,
markdown + JSON).
"""

from __future__ import annotations

from .experiment import (
    Experiment,
    LegacyExperiment,
    PlannedCell,
    experiment_names,
    get_experiment,
    register,
    registry,
)
from .instance import Instance
from .report import aggregate_rows, aggregate_table
from .rundir import (
    MANIFEST_VERSION,
    RunIdentityError,
    build_manifest,
    load_manifest,
    new_run_dir,
    verify_identity,
)
from .runs import execute_run, report_run
from .target import Target

__all__ = [
    "Experiment",
    "Instance",
    "LegacyExperiment",
    "MANIFEST_VERSION",
    "PlannedCell",
    "RunIdentityError",
    "Target",
    "aggregate_rows",
    "aggregate_table",
    "build_manifest",
    "execute_run",
    "experiment_names",
    "get_experiment",
    "load_manifest",
    "new_run_dir",
    "register",
    "registry",
    "report_run",
    "verify_identity",
]
