"""Aggregated report tables: median/stdev over the seed axis.

Every matrix experiment gets two views of one run:

* its *figure table* (``Experiment.table``) — the exact legacy rendering,
  regenerated from resolved cells, and
* the *aggregate table* built here — one row per (workload, instance)
  with n/median/stdev over seed replicas, the statistically honest view
  once ``--seeds`` > 1.

Both are written as markdown and JSON into the run directory
(docs/ORCHESTRATION.md documents the layout).
"""

from __future__ import annotations

import statistics

from ..parallel.executor import CellResult
from .experiment import Experiment, PlannedCell


def aggregate_rows(
    plan: list[PlannedCell], results: list[CellResult]
) -> list[dict]:
    """One JSON row per (workload, instance): IPCs over the seed axis.

    Failed cells are surfaced as ``errors`` rather than silently dropped,
    so a partial run's report never looks like a complete one.
    """
    groups: dict[tuple[str, str], dict] = {}
    for cell, result in zip(plan, results):
        key = (cell.target.workload, cell.instance.name)
        group = groups.setdefault(
            key,
            {
                "workload": cell.target.workload,
                "instance": cell.instance.name,
                "mode": cell.instance.mode,
                "ipcs": [],
                "errors": [],
            },
        )
        if result is not None and result.ok:
            group["ipcs"].append(result.require_stats().ipc)
        else:
            label = cell.target.variant
            error = getattr(result, "error", None) or "missing"
            group["errors"].append(f"{label}: {error}")
    rows = []
    for group in groups.values():
        ipcs = group["ipcs"]
        row = dict(group)
        row["n"] = len(ipcs)
        row["median_ipc"] = statistics.median(ipcs) if ipcs else None
        row["stdev_ipc"] = (
            statistics.stdev(ipcs) if len(ipcs) >= 2 else (0.0 if ipcs else None)
        )
        if not row["errors"]:
            del row["errors"]
        rows.append(row)
    return rows


def aggregate_table(
    experiment: Experiment,
    plan: list[PlannedCell],
    results: list[CellResult],
):
    """The aggregate rows as an ExperimentResult markdown/text table."""
    from ..experiments.common import ExperimentResult

    rows = aggregate_rows(plan, results)
    by_key = {(r["workload"], r["instance"]): r for r in rows}
    names = experiment.instance_names()
    table = ExperimentResult(
        experiment=f"{experiment.name}-aggregate",
        title=f"{experiment.title or experiment.name} — aggregate "
        f"(median ± stdev over {experiment.seeds} seed(s))",
        headers=["workload"] + names,
    )
    for workload in experiment.workloads:
        out = [workload]
        for name in names:
            row = by_key.get((workload, name))
            if row is None or row["median_ipc"] is None:
                out.append("FAILED")
            else:
                out.append(f"{row['median_ipc']:.4f} ±{row['stdev_ipc']:.4f}")
        table.add_row(*out)
    return table
