"""Run and report orchestrated experiments against run directories.

:func:`execute_run` is the engine behind ``python -m repro.orchestrate
run``: plan the experiment, open (or resume) a run directory, execute the
still-missing cells through the shared pool/cache/sampling stack, persist
every resolved cell incrementally, and render the reports.
:func:`report_run` re-renders reports from a finished (or partial) run
directory without simulating anything — after re-verifying the run's
recorded identity against the present code.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from ..parallel.cellkey import CACHE_SCHEMA_VERSION, cell_key
from ..parallel.executor import STATUS_DONE, STATUS_FAILED, CellResult
from ..sim.simulator import resolve_engine
from ..uarch.stats import SimStats
from .experiment import Experiment, PlannedCell, get_experiment
from .report import aggregate_rows, aggregate_table
from .rundir import (
    RunIdentityError,
    atomic_write_json,
    build_manifest,
    latest_run_dir,
    load_cells,
    load_manifest,
    manifest_path,
    new_run_dir,
    store_cell,
    verify_identity,
)


def _cell_payload(result: CellResult) -> dict:
    """The JSON stored per resolved cell (superset of a checkpoint row)."""
    payload = {
        "status": result.status,
        "attempts": result.attempts,
        "cached": result.from_cache,
        "workload": result.spec.workload,
        "variant": result.spec.variant,
        "mode": result.spec.mode,
        "result_key": result.key,
    }
    if result.ok:
        stats = result.require_stats()
        payload["ipc"] = result.ipc
        payload["critical_pcs"] = list(result.critical_pcs)
        payload["stats"] = stats.to_dict()
        if result.estimate is not None:
            payload["sampled"] = result.estimate.brief()
        if result.extra:
            # Composite cells (co-run / SMT) keep their per-core breakdown
            # here, same as in the result cache — resume/report need it to
            # re-render tables.
            payload["extra"] = result.extra
    else:
        payload["error"] = result.error
        payload["error_type"] = result.error_type
        if result.crash_bundle:
            payload["crash_bundle"] = result.crash_bundle
    return payload


def _result_from_payload(cell: PlannedCell, payload: dict) -> CellResult:
    """Rehydrate a stored cell file into a CellResult."""
    if payload.get("status") != STATUS_DONE:
        return CellResult(
            spec=cell.spec,
            key=payload.get("result_key", cell.key),
            status=STATUS_FAILED,
            attempts=payload.get("attempts", 0),
            error=payload.get("error"),
            error_type=payload.get("error_type"),
            crash_bundle=payload.get("crash_bundle"),
        )
    return CellResult(
        spec=cell.spec,
        key=payload.get("result_key", cell.key),
        status=STATUS_DONE,
        attempts=payload.get("attempts", 0),
        from_cache=True,  # served from the run directory, not re-simulated
        ipc=payload["ipc"],
        stats=SimStats.from_dict(payload["stats"]),
        critical_pcs=tuple(payload.get("critical_pcs", ())),
        extra=payload.get("extra", {}),
    )


def _table_json(table) -> dict:
    return {
        "experiment": table.experiment,
        "title": table.title,
        "headers": list(table.headers),
        "rows": [list(row) for row in table.rows],
        "notes": list(table.notes),
    }


def _write_reports(run_dir: Path, manifest: dict, figure, aggregate,
                   agg_rows: list[dict] | None, failed: list[dict]) -> dict:
    """Write report.md / report.json; returns the report dict."""
    report = {
        "experiment": manifest["experiment"],
        "kind": manifest["kind"],
        "title": manifest["title"],
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "identity": manifest["instance"],
        "args": manifest["args"],
        "figure": _table_json(figure) if figure is not None else None,
        "aggregate": agg_rows,
        "failed": failed,
    }
    atomic_write_json(run_dir / "report.json", report)
    lines = []
    if figure is not None:
        lines.append(figure.to_markdown())
    if aggregate is not None:
        lines.append(aggregate.to_markdown())
    if failed:
        lines.append(f"**{len(failed)} cell(s) failed:**\n")
        for row in failed:
            lines.append(
                f"- `{row['workload']}/{row['variant']}/{row['instance']}`: "
                f"[{row.get('error_type', '?')}] {row.get('error', '')}"
            )
        lines.append("")
    identity = manifest["instance"]
    lines.append(
        f"*identity: engine={identity['engine']}, sample={identity['sample']}, "
        f"cache_schema={identity['cache_schema']}*\n"
    )
    (run_dir / "report.md").write_text("\n".join(lines))
    return report


def _failed_rows(plan: list[PlannedCell], results: list[CellResult | None]) -> list[dict]:
    failed = []
    for cell, result in zip(plan, results):
        if result is None or not result.ok:
            failed.append({
                "workload": cell.target.workload,
                "variant": cell.target.variant,
                "instance": cell.instance.name,
                "key": cell.key,
                "error": getattr(result, "error", None) or "missing",
                "error_type": getattr(result, "error_type", None) or "Missing",
            })
    return failed


def execute_run(
    experiment: Experiment,
    *,
    out: str | Path = "runs",
    run_dir: str | Path | None = None,
    resume: bool = False,
    jobs: int = 1,
    cache=None,
    sample: str = "off",
    engine: str | None = None,
    on_cell=None,
) -> dict:
    """Run one experiment into a run directory; returns a summary dict.

    ``resume=True`` reopens an existing run directory (``run_dir`` or the
    experiment's latest under ``out``), verifies its recorded identity
    matches this invocation (:class:`RunIdentityError` otherwise), and
    simulates only the cells without a stored result.
    """
    from ..experiments.common import execution_context, run_cells

    engine = resolve_engine(engine)
    plan = experiment.plan()
    fresh_manifest = build_manifest(experiment, plan, engine=engine, sample=sample)

    if resume:
        path = Path(run_dir) if run_dir else latest_run_dir(out, experiment.name)
        if path is None or not manifest_path(path).is_file():
            raise FileNotFoundError(
                f"no resumable run directory for {experiment.name!r} "
                f"(looked in {run_dir or Path(out) / experiment.name})"
            )
        manifest = load_manifest(path)
        verify_identity(manifest, fresh_manifest, path=str(path))
    else:
        path = Path(run_dir) if run_dir else new_run_dir(out, experiment.name)
        if run_dir is not None and manifest_path(path).is_file():
            raise RunIdentityError(
                f"{path} already holds a run; pass --resume to continue it"
            )
        manifest = fresh_manifest
        atomic_write_json(manifest_path(path), manifest)

    if not plan:
        # Legacy experiment: not cell-shaped; run it whole under the same
        # execution context and persist only the rendered report.
        with execution_context(jobs=jobs, cache=cache, sample=sample,
                               engine=engine):
            figure = experiment.run_inline()
        manifest["status"] = "complete"
        atomic_write_json(manifest_path(path), manifest)
        report = _write_reports(path, manifest, figure, None, None, [])
        return {"run_dir": str(path), "failed": 0, "figure": figure,
                "aggregate": None, "report": report}

    # Index plan positions by key (duplicate specs share one stored cell).
    by_key: dict[str, list[int]] = {}
    for index, cell in enumerate(plan):
        by_key.setdefault(cell.key, []).append(index)

    results: list[CellResult | None] = [None] * len(plan)
    stored = load_cells(path) if resume else {}
    pending: list[PlannedCell] = []
    for key, indices in by_key.items():
        payload = stored.get(key)
        if payload is not None and payload.get("status") == STATUS_DONE:
            for index in indices:
                results[index] = _result_from_payload(plan[index], payload)
        else:
            pending.append(plan[indices[0]])

    def persist(result: CellResult) -> None:
        key = cell_key(result.spec)
        store_cell(path, key, _cell_payload(result))
        if on_cell is not None:
            on_cell(key, result)

    if pending:
        with execution_context(jobs=jobs, cache=cache, sample=sample,
                               engine=engine):
            fresh = run_cells([c.spec for c in pending], on_result=persist)
        for cell, result in zip(pending, fresh):
            for index in by_key[cell.key]:
                results[index] = result

    failed = _failed_rows(plan, results)
    manifest["status"] = "complete" if not failed else "partial"
    manifest["cells_done"] = len(plan) - len(failed)
    if cache is not None:
        manifest["cache"] = {
            "hits": cache.stats.hits,
            "misses": cache.stats.misses,
            "stores": cache.stats.stores,
        }
    atomic_write_json(manifest_path(path), manifest)

    figure = None
    if not failed:
        figure = experiment.table(plan, results)
    aggregate = aggregate_table(experiment, plan, results)
    agg_rows = aggregate_rows(plan, results)
    report = _write_reports(path, manifest, figure, aggregate, agg_rows, failed)
    return {"run_dir": str(path), "failed": len(failed), "figure": figure,
            "aggregate": aggregate, "report": report}


def report_run(run_dir: str | Path) -> dict:
    """Re-render reports from a run directory without simulating.

    Verifies the stored identity first: a run recorded under a different
    cache-schema generation, or whose planned cell keys no longer match
    what the present code would produce, raises :class:`RunIdentityError`
    instead of quietly mixing instances.
    """
    path = Path(run_dir)
    manifest = load_manifest(path)
    identity = manifest.get("instance", {})
    if identity.get("cache_schema") != CACHE_SCHEMA_VERSION:
        raise RunIdentityError(
            f"{path} was recorded under cache schema "
            f"{identity.get('cache_schema')!r}; this code is "
            f"{CACHE_SCHEMA_VERSION} — re-run instead of re-reporting"
        )

    cls = get_experiment(manifest["experiment"])
    experiment = cls(**manifest.get("args", {}))

    if manifest.get("kind") == "legacy" or not manifest.get("cells"):
        # Re-render the stored report (legacy runs keep no cells).
        with open(path / "report.json") as handle:
            report = json.load(handle)
        return report

    plan = experiment.plan()
    fresh = build_manifest(
        experiment, plan,
        engine=identity.get("engine"), sample=identity.get("sample", "off"),
    )
    verify_identity(manifest, fresh, path=str(path))

    stored = load_cells(path)
    results: list[CellResult | None] = []
    for cell in plan:
        payload = stored.get(cell.key)
        results.append(
            _result_from_payload(cell, payload) if payload is not None else None
        )
    failed = _failed_rows(plan, results)
    figure = None
    if not failed:
        figure = experiment.table(plan, results)
    aggregate = aggregate_table(experiment, plan, results)
    agg_rows = aggregate_rows(plan, results)
    return _write_reports(path, manifest, figure, aggregate, agg_rows, failed)
