"""Per-run result directories: layout, manifest, and identity checks.

One ``orchestrate run`` owns one directory::

    <out>/<experiment>/run-NNN/
        manifest.json        # full run identity + per-cell index
        cells/<key>.json     # one resolved cell per file (atomic writes)
        report.md            # figure table + aggregate table
        report.json          # the same, machine-readable

The manifest records the **full instance identity** — resolved engine,
sample spec, and the result-cache schema version — alongside the
experiment's arguments and every planned cell key. ``run --resume`` and
``report`` verify that identity against the present code and flags before
touching a single cell, so a resumed or re-reported run can never
silently mix engines, sample plans, or schema generations
(:class:`RunIdentityError` names every mismatch instead).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from ..parallel.cellkey import CACHE_SCHEMA_VERSION
from ..sim.simulator import resolve_engine
from .experiment import Experiment, PlannedCell

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"
CELLS_DIR = "cells"


class RunIdentityError(ValueError):
    """A run directory whose recorded identity conflicts with this run."""


def atomic_write_json(path: Path, payload: dict) -> None:
    """Write JSON via temp file + rename (kill-safe, like the sweep)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        os.replace(tmp, str(path))
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def new_run_dir(out: str | Path, experiment: str) -> Path:
    """Allocate ``<out>/<experiment>/run-NNN`` (NNN = max existing + 1)."""
    base = Path(out) / experiment
    base.mkdir(parents=True, exist_ok=True)
    numbers = [
        int(p.name.split("-", 1)[1])
        for p in base.glob("run-*")
        if p.is_dir() and p.name.split("-", 1)[1].isdigit()
    ]
    run_dir = base / f"run-{max(numbers, default=0) + 1:03d}"
    run_dir.mkdir()
    (run_dir / CELLS_DIR).mkdir()
    return run_dir


def latest_run_dir(out: str | Path, experiment: str) -> Path | None:
    base = Path(out) / experiment
    if not base.is_dir():
        return None
    runs = sorted(p for p in base.glob("run-*") if p.is_dir())
    return runs[-1] if runs else None


def _target_identity(targets) -> dict | None:
    """Workload-build provenance of a run's targets.

    Named analogues are fully determined by the code tree the cell keys
    already hash, but *generated* targets (``gen:`` names, docs/WORKGEN.md)
    additionally depend on the generator's revision. Recording it here —
    and comparing it in :func:`verify_identity` — makes a resume or
    re-report across generator versions a hard :class:`RunIdentityError`
    instead of a silent mix of differently-built workloads.
    """
    generated = sorted({t.workload for t in targets if t.workload.startswith("gen:")})
    if not generated:
        return None
    from ..workgen.spec import GENERATOR_VERSION

    return {"generator_version": GENERATOR_VERSION, "generated_targets": len(generated)}


def build_manifest(
    experiment: Experiment,
    plan: list[PlannedCell],
    *,
    engine: str | None = None,
    sample: str = "off",
) -> dict:
    """The run's full identity: experiment, args, instance, cell index."""
    targets = experiment.targets() if plan else []
    instance_entries: dict[str, dict] = {}
    for cell in plan:
        instance_entries.setdefault(cell.instance.name, cell.instance.describe())
    return {
        "manifest_version": MANIFEST_VERSION,
        "experiment": experiment.name,
        "kind": experiment.kind,
        "title": experiment.title,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "args": experiment.args(),
        # The execution identity the bugfix satellite is about: everything
        # that must match between the run that wrote a cell and the run
        # that resumes or re-reports it.
        "instance": {
            "engine": resolve_engine(engine),
            "sample": sample or "off",
            "cache_schema": CACHE_SCHEMA_VERSION,
            "target_identity": _target_identity(targets),
        },
        "targets": [t.describe() for t in targets],
        "instances": instance_entries,
        "cells": {
            cell.key: {
                "workload": cell.target.workload,
                "variant": cell.target.variant,
                "instance": cell.instance.name,
                "mode": cell.instance.mode,
            }
            for cell in plan
        },
        "status": "planned",
    }


def manifest_path(run_dir: str | Path) -> Path:
    return Path(run_dir) / MANIFEST_NAME


def load_manifest(run_dir: str | Path) -> dict:
    path = manifest_path(run_dir)
    if not path.is_file():
        raise FileNotFoundError(f"{run_dir} has no {MANIFEST_NAME}")
    with open(path) as handle:
        manifest = json.load(handle)
    if manifest.get("manifest_version") != MANIFEST_VERSION:
        raise RunIdentityError(
            f"{path} has manifest_version "
            f"{manifest.get('manifest_version')!r}, expected {MANIFEST_VERSION}"
        )
    return manifest


def verify_identity(manifest: dict, fresh: dict, *, path: str = "") -> None:
    """Every identity mismatch between a stored and a fresh manifest.

    ``fresh`` is what this process would have written for the same run;
    any divergence (experiment, args, engine, sample spec, cache schema,
    or the planned cell-key set) raises with the complete list, so a
    resume/report can never silently mix instances.
    """
    problems = []
    for field in ("experiment", "kind"):
        if manifest.get(field) != fresh.get(field):
            problems.append(
                f"{field}: run dir has {manifest.get(field)!r}, "
                f"this invocation is {fresh.get(field)!r}"
            )
    if manifest.get("args") != fresh.get("args"):
        problems.append(
            f"args: run dir has {manifest.get('args')!r}, "
            f"this invocation is {fresh.get('args')!r}"
        )
    stored = manifest.get("instance", {})
    current = fresh.get("instance", {})
    for field in ("engine", "sample", "cache_schema", "target_identity"):
        if stored.get(field) != current.get(field):
            problems.append(
                f"instance.{field}: run dir has {stored.get(field)!r}, "
                f"this invocation is {current.get(field)!r}"
            )
    if set(manifest.get("cells", {})) != set(fresh.get("cells", {})):
        missing = sorted(set(fresh.get("cells", {})) - set(manifest.get("cells", {})))
        extra = sorted(set(manifest.get("cells", {})) - set(fresh.get("cells", {})))
        problems.append(
            f"cell keys diverge (simulator or config changed): "
            f"{len(missing)} newly planned, {len(extra)} no longer planned"
        )
    if problems:
        where = f" in {path}" if path else ""
        raise RunIdentityError(
            "run identity mismatch%s — refusing to mix instances:\n  %s"
            % (where, "\n  ".join(problems))
        )


def cell_path(run_dir: str | Path, key: str) -> Path:
    return Path(run_dir) / CELLS_DIR / f"{key}.json"


def store_cell(run_dir: str | Path, key: str, payload: dict) -> None:
    atomic_write_json(cell_path(run_dir, key), payload)


def load_cells(run_dir: str | Path) -> dict[str, dict]:
    """Every stored cell payload, keyed by cell key; corrupt files skipped."""
    cells_dir = Path(run_dir) / CELLS_DIR
    loaded: dict[str, dict] = {}
    if not cells_dir.is_dir():
        return loaded
    for path in sorted(cells_dir.glob("*.json")):
        try:
            with open(path) as handle:
                loaded[path.stem] = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue  # treated as not-yet-run; resume re-simulates it
    return loaded
