"""A Target is one workload input of the evaluation matrix.

Targets reference workloads *by name* (the picklable convention the whole
parallel layer uses); the variant carries the seed axis — ``"ref"`` is the
canonical input, ``"ref#2"`` the second seed replica with identical sizing
but a distinct deterministic RNG stream (``repro.workloads.base``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.base import split_variant, variant_seed


@dataclass(frozen=True)
class Target:
    """One workload input: (workload name, variant)."""

    workload: str
    variant: str = "ref"

    def __post_init__(self):
        split_variant(self.variant)  # validates base variant + replica

    @property
    def seed(self) -> int:
        """The resolved RNG seed of this target's variant."""
        return variant_seed(self.variant)

    @property
    def replica(self) -> int:
        """Seed-replica index (0 for the plain variant)."""
        return split_variant(self.variant)[1]

    def label(self) -> str:
        return (
            self.workload
            if self.variant == "ref"
            else f"{self.workload}:{self.variant}"
        )

    def describe(self) -> dict:
        """JSON-serializable identity (manifest ``targets`` entries).

        Generated targets (``gen:`` names, docs/WORKGEN.md) additionally
        record the spec and generator version they were built from — the
        per-target half of the run's build provenance.
        """
        entry = {
            "workload": self.workload,
            "variant": self.variant,
            "seed": self.seed,
        }
        if self.workload.startswith("gen:"):
            from ..workgen.spec import GENERATOR_VERSION, parse_name

            spec, gen_seed = parse_name(self.workload)
            entry["generator"] = {
                "version": GENERATOR_VERSION,
                "seed": gen_seed,
                "spec": spec.knob_values(),
            }
        return entry


def seed_variants(seeds: int, base: str = "ref") -> list[str]:
    """The variant list for ``seeds`` replicas: ``ref, ref#1, ref#2, ...``.

    ``seeds=1`` is the historical single-run behaviour (plain ``base``).
    """
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, not {seeds}")
    return [base] + [f"{base}#{i}" for i in range(1, seeds)]
