"""An Instance is one way of running a Target: mode + config + knobs.

One Instance crossed with one Target lowers to exactly one
:class:`~repro.parallel.cellkey.CellSpec` — the unit the pool, cache, and
sampling layers already understand — so everything an Instance pins is,
by construction, part of the cell's content-addressed identity.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from ..core.fdo import CrispConfig
from ..parallel.cellkey import CellSpec
from ..uarch.config import CoreConfig
from .target import Target


@dataclass
class Instance:
    """One column of an experiment's matrix.

    ``name`` is the display/report identity (unique within one
    experiment); everything else maps directly onto ``CellSpec`` fields.
    ``config=None`` means the Table 1 Skylake preset, mirroring
    ``CellSpec.core_config()``.
    """

    name: str
    mode: str
    config: CoreConfig | None = None
    crisp_config: CrispConfig | None = None
    critical_pcs: tuple[int, ...] | None = None

    def spec(self, target: Target, scale: float = 1.0) -> CellSpec:
        """Lower (self × target) to one simulation cell."""
        return CellSpec(
            workload=target.workload,
            variant=target.variant,
            mode=self.mode,
            scale=scale,
            config=self.config,
            crisp_config=self.crisp_config,
            critical_pcs=self.critical_pcs,
        )

    def describe(self) -> dict:
        """JSON-serializable identity (manifest ``instances`` entries).

        The core config is recorded as a digest — its full field set is
        already hashed into every cell key; the digest keeps the manifest
        readable while still distinguishing configs.
        """
        entry: dict = {"name": self.name, "mode": self.mode}
        if self.config is None:
            entry["config"] = "skylake-default"
        else:
            canon = json.dumps(
                dataclasses.asdict(self.config),
                sort_keys=True,
                separators=(",", ":"),
            )
            entry["config"] = "sha256:" + hashlib.sha256(
                canon.encode("utf-8")
            ).hexdigest()[:16]
        if self.crisp_config is not None:
            entry["crisp_config"] = dataclasses.asdict(self.crisp_config)
        if self.critical_pcs is not None:
            entry["critical_pcs"] = len(self.critical_pcs)
        return entry


def ooo_instance(name: str = "ooo", **kw) -> Instance:
    """The baseline instance every relative-gain experiment shares."""
    return Instance(name=name, mode="ooo", **kw)
