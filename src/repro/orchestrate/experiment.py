"""Experiments: named selections over the Target × Instance cross product.

An :class:`Experiment` declares *what* to run — its targets (workloads ×
seed replicas), its instances (mode/config columns), and how the resolved
cells become a report table. *How* cells run (pool, cache, sampling,
engine) stays in the execution layers; ``run_inline`` routes through
:func:`repro.experiments.common.run_cells`, so the CLI's
``--jobs/--cache-dir/--sample/--engine`` context applies unchanged.

Two kinds live in the registry:

* ``matrix`` — a real declarative cross product that lowers to
  :class:`~repro.parallel.cellkey.CellSpec` cells (fig7, fig9, fig10, the
  prefetcher/ratio ablations, the ``suite`` matrix). Adding a scenario is
  one registered class.
* ``legacy`` — an auto-generated wrapper around a figure module whose
  computation is not (yet) cell-shaped; it still lists, runs, and reports
  through the same CLI, so the registry covers every experiment exactly
  once (``scripts/check_experiment_registry.py``).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..parallel.cellkey import CellSpec, cell_key
from ..parallel.executor import CellResult
from .instance import Instance
from .target import Target, seed_variants


@dataclass(frozen=True)
class PlannedCell:
    """One lowered cell of an experiment's matrix."""

    target: Target
    instance: Instance
    spec: CellSpec

    @property
    def key(self) -> str:
        return cell_key(self.spec)


class Experiment:
    """Base class: a named selection over the cross product + a report.

    Subclasses set ``name`` (the registry id) and ``title``, and implement
    :meth:`instances`; :meth:`table` defaults to the generic per-workload
    median-IPC matrix and is overridden by ported figure experiments to
    regenerate their exact legacy tables.
    """

    #: Registry id (``fig7``, ``ablation_ratio``, ...). Must be unique.
    name: str = ""
    #: Human title used as the report heading.
    title: str = ""
    #: ``matrix`` (lowers to cells) or ``legacy`` (wraps a figure module).
    kind: str = "matrix"
    #: Default workload selection; ``None`` = the full Figure 7 suite.
    default_workloads: tuple[str, ...] | None = None

    def __init__(
        self,
        scale: float = 1.0,
        workloads: list[str] | None = None,
        seeds: int = 1,
    ):
        self.scale = scale
        self._workloads_arg = list(workloads) if workloads else None
        self.workloads = self._workloads_arg or self.defaults()
        self.seeds = seeds

    # -- selection -------------------------------------------------------------

    def defaults(self) -> list[str]:
        if self.default_workloads is not None:
            return list(self.default_workloads)
        from ..workloads import suite_names

        return suite_names()

    def variants(self) -> list[str]:
        """The seed axis: ``ref`` plus ``seeds - 1`` replicas."""
        return seed_variants(self.seeds)

    def targets(self) -> list[Target]:
        return [
            Target(workload, variant)
            for workload in self.workloads
            for variant in self.variants()
        ]

    def instances(self, target: Target) -> list[Instance]:
        """The instance columns for one target.

        Most experiments return the same list for every target; per-target
        instances exist for experiments whose annotation is derived from
        the target itself (``ablation_ratio``).
        """
        raise NotImplementedError(
            f"experiment {self.name!r} must implement instances()"
        )

    def plan(self) -> list[PlannedCell]:
        """The full lowered matrix, in deterministic target-major order."""
        return [
            PlannedCell(target, instance, instance.spec(target, self.scale))
            for target in self.targets()
            for instance in self.instances(target)
        ]

    # -- args round-trip (manifest) --------------------------------------------

    def args(self) -> dict:
        """Constructor arguments, JSON-shaped (manifest ``args`` entry)."""
        return {
            "scale": self.scale,
            "workloads": self._workloads_arg,
            "seeds": self.seeds,
        }

    # -- reporting -------------------------------------------------------------

    @staticmethod
    def results_map(
        plan: list[PlannedCell], results: list[CellResult]
    ) -> dict[tuple[str, str, str], CellResult]:
        """Index results by (workload, variant, instance name)."""
        return {
            (cell.target.workload, cell.target.variant, cell.instance.name): result
            for cell, result in zip(plan, results)
        }

    def ipc(self, cells: dict, workload: str, instance: str) -> float:
        """Median IPC of one (workload, instance) over the seed axis.

        With a single seed this is *the* IPC, bit-identical to a direct
        run — ``statistics.median`` of one element returns it unchanged —
        so ported experiments keep their exact legacy numbers.
        """
        ipcs = [
            cells[(workload, variant, instance)].require_stats().ipc
            for variant in self.variants()
        ]
        return statistics.median(ipcs)

    def instance_names(self) -> list[str]:
        """Column order for generic tables (first target's instances)."""
        targets = self.targets()
        if not targets:
            return []
        return [instance.name for instance in self.instances(targets[0])]

    def table(self, plan: list[PlannedCell], results: list[CellResult]):
        """Generic matrix table: one row per workload, median IPC per instance."""
        from ..experiments.common import ExperimentResult

        cells = self.results_map(plan, results)
        names = self.instance_names()
        result = ExperimentResult(
            experiment=self.name,
            title=self.title or self.name,
            headers=["workload"] + [f"{n} IPC" for n in names],
        )
        for workload in self.workloads:
            result.add_row(
                workload,
                *[self.ipc(cells, workload, name) for name in names],
            )
        if self.seeds > 1:
            result.notes.append(
                f"median over {self.seeds} seed replicas per cell "
                "(aggregate table has the stdev)"
            )
        return result

    # -- execution -------------------------------------------------------------

    def run_inline(self):
        """Plan, run under the active execution context, and build the table.

        This is the body of every ported figure module's ``run()`` shim:
        library callers and ``python -m repro.experiments <id>`` keep their
        historical behaviour (in-process by default, pool/cache/sampled
        when an ``execution_context`` is active).
        """
        from ..experiments.common import run_cells

        plan = self.plan()
        results = run_cells([cell.spec for cell in plan])
        for result in results:
            result.require_stats()
        return self.table(plan, results)


# -- legacy wrappers -----------------------------------------------------------

#: Figure modules whose run() takes no ``workloads`` selection.
TAKES_NO_WORKLOADS = frozenset(
    {"table1", "fig1", "sec31", "discussion_smt", "discussion_division"}
)
#: Figure modules whose run() takes no ``scale``.
TAKES_NO_SCALE = frozenset({"table1"})


class LegacyExperiment(Experiment):
    """Auto-generated wrapper for a figure module without a declarative port.

    It cannot lower to cells (``plan()`` is empty) but runs and reports
    through the same CLI, with the execution context applied — modules
    that internally use ``run_cells`` still get the pool and cache.
    """

    kind = "legacy"
    #: The wrapped ``repro.experiments`` module (set by :func:`make_legacy`).
    module = None

    def plan(self) -> list[PlannedCell]:
        return []

    def run_inline(self):
        kwargs = {}
        if self.name not in TAKES_NO_SCALE:
            kwargs["scale"] = self.scale
        if self._workloads_arg and self.name not in TAKES_NO_WORKLOADS:
            kwargs["workloads"] = list(self._workloads_arg)
        return self.module.run(**kwargs)


def make_legacy(exp_id: str, module) -> type[LegacyExperiment]:
    """A LegacyExperiment subclass wrapping one figure module."""
    doc = (module.__doc__ or exp_id).strip().splitlines()[0].rstrip(".")
    return type(
        f"Legacy_{exp_id}",
        (LegacyExperiment,),
        {"name": exp_id, "title": doc, "module": module},
    )


# -- registry ------------------------------------------------------------------

_REGISTRY: dict[str, type[Experiment]] = {}
_LOADED = False


def register(cls: type[Experiment]) -> type[Experiment]:
    """Class decorator: add an Experiment to the registry under its name."""
    if not cls.name:
        raise ValueError(f"experiment class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate experiment {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_loaded() -> None:
    """Import the figure modules (registering their declarative classes),
    then wrap every remaining figure id as a LegacyExperiment."""
    global _LOADED
    if _LOADED:
        return
    from .. import experiments
    from ..workgen import grid  # noqa: F401  (registers property_grid)

    for exp_id, module in experiments.EXPERIMENTS.items():
        if exp_id not in _REGISTRY:
            _REGISTRY[exp_id] = make_legacy(exp_id, module)
    _LOADED = True


def registry() -> dict[str, type[Experiment]]:
    """The full (id -> Experiment class) registry."""
    _ensure_loaded()
    return dict(_REGISTRY)


def experiment_names() -> list[str]:
    return sorted(registry())


def get_experiment(name: str) -> type[Experiment]:
    reg = registry()
    try:
        return reg[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; known: {sorted(reg)}"
        ) from None


# -- the whole-suite matrix ----------------------------------------------------


@register
class SuiteMatrix(Experiment):
    """The resumable sweep's (workload × mode) matrix as an Experiment.

    The generic report applies: per-workload median IPC per mode, with
    stdev over seed replicas in the aggregate table — the thousand-cell
    shape the orchestration layer exists for.
    """

    name = "suite"
    title = "Suite matrix: IPC per workload x mode"

    def __init__(
        self,
        scale: float = 1.0,
        workloads: list[str] | None = None,
        seeds: int = 1,
        modes: tuple[str, ...] = ("ooo", "crisp"),
    ):
        super().__init__(scale=scale, workloads=workloads, seeds=seeds)
        self.modes = tuple(modes)

    def args(self) -> dict:
        args = super().args()
        args["modes"] = list(self.modes)
        return args

    def instances(self, target: Target) -> list[Instance]:
        return [Instance(name=mode, mode=mode) for mode in self.modes]
