"""CLI: ``python -m repro.orchestrate {list,run,report}``.

The declarative front door (docs/ORCHESTRATION.md): ``list`` prints the
experiment registry, ``run`` lowers one experiment's Target × Instance
selection to cells, executes them through the shared pool/cache/sampling
stack, and writes a per-run result directory, ``report`` re-renders a
run directory's tables without simulating.

Execution flags are the same set every experiment CLI takes
(docs/PARALLEL.md): ``--jobs``, ``--cache-dir``/``--no-cache``,
``--sample``, ``--engine``. ``run --resume`` continues the latest (or
named) run directory, simulating only missing cells — after verifying
the run's recorded identity matches this invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .experiment import experiment_names, get_experiment, registry
from .rundir import RunIdentityError, latest_run_dir
from .runs import execute_run, report_run


def build_cache(args):
    from ..parallel.cache import ResultCache

    if args.no_cache:
        return None
    return ResultCache(args.cache_dir)


def cmd_list(args) -> int:
    entries = []
    for name, cls in sorted(registry().items()):
        entries.append({"name": name, "kind": cls.kind, "title": cls.title})
    if args.json:
        print(json.dumps(entries, indent=1))
        return 0
    width = max(len(e["name"]) for e in entries)
    for entry in entries:
        print(f"{entry['name']:<{width}}  {entry['kind']:<6}  {entry['title']}")
    return 0


def make_experiment(args):
    cls = get_experiment(args.experiment)
    kwargs = {"scale": args.scale, "seeds": args.seeds}
    if args.workloads:
        kwargs["workloads"] = args.workloads.split(",")
    return cls(**kwargs)


def cmd_run(args) -> int:
    experiment = make_experiment(args)
    summary = execute_run(
        experiment,
        out=args.out,
        run_dir=args.run_dir,
        resume=args.resume,
        jobs=args.jobs,
        cache=build_cache(args),
        sample=args.sample,
        engine=args.engine,
        on_cell=lambda key, result: print(
            f"  {result.spec.label()}: {result.status}"
            f"{' (cached)' if result.from_cache else ''}",
            flush=True,
        ),
    )
    print(f"run dir: {summary['run_dir']}")
    figure = summary["figure"]
    if figure is not None:
        print(figure.to_markdown() if args.markdown else figure.to_text())
    aggregate = summary["aggregate"]
    if aggregate is not None and (args.aggregate or figure is None):
        print(aggregate.to_markdown() if args.markdown else aggregate.to_text())
    if summary["failed"]:
        print(f"{summary['failed']} cell(s) failed; see "
              f"{summary['run_dir']}/report.md", file=sys.stderr)
        return 1
    return 0


def cmd_report(args) -> int:
    run_dir = args.run_dir
    if run_dir is None:
        if not args.experiment:
            print("report needs --run-dir or --experiment", file=sys.stderr)
            return 2
        run_dir = latest_run_dir(args.out, args.experiment)
        if run_dir is None:
            print(f"no runs for {args.experiment!r} under {args.out}",
                  file=sys.stderr)
            return 1
    report = report_run(run_dir)
    if args.json:
        print(json.dumps(report, indent=1))
    else:
        print((Path(run_dir) / "report.md").read_text())
    return 0


def add_selection_args(parser) -> None:
    parser.add_argument(
        "--experiment", required=True,
        choices=experiment_names(), metavar="NAME",
        help="experiment id from the registry ('list' prints them)",
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor")
    parser.add_argument(
        "--workloads", default="",
        help="comma-separated workload subset (default: experiment's own)",
    )
    parser.add_argument(
        "--seeds", type=int, default=1, metavar="N",
        help="seed replicas per workload (ref, ref#1, ...); reports show "
        "median/stdev over them (default: 1, bit-identical to legacy runs)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.orchestrate",
        description="Declarative experiment orchestration "
        "(docs/ORCHESTRATION.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="print the experiment registry")
    list_p.add_argument("--json", action="store_true",
                        help="machine-readable registry listing")
    list_p.set_defaults(func=cmd_list)

    run_p = sub.add_parser("run", help="run one experiment into a run dir")
    add_selection_args(run_p)
    run_p.add_argument("--out", default="runs", metavar="DIR",
                       help="root of run directories (default: runs)")
    run_p.add_argument("--run-dir", default=None, metavar="DIR",
                       help="explicit run directory (default: allocate "
                       "<out>/<experiment>/run-NNN)")
    run_p.add_argument("--resume", action="store_true",
                       help="continue the latest (or --run-dir) run, "
                       "simulating only missing cells")
    run_p.add_argument("--markdown", action="store_true",
                       help="print markdown tables instead of aligned text")
    run_p.add_argument("--aggregate", action="store_true",
                       help="also print the seed-aggregate table")
    execution = run_p.add_argument_group("execution options (docs/PARALLEL.md)")
    execution.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for simulation cells (default: 1, in-process)",
    )
    execution.add_argument(
        "--cache-dir", default=".repro_cache", metavar="DIR",
        help="content-addressed result cache directory (default: .repro_cache)",
    )
    execution.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache (always re-simulate)",
    )
    execution.add_argument(
        "--sample", default="off", metavar="SPEC",
        help="sampled simulation: off | smarts:<detail>/<period> | "
        "simpoint:<k>[/<interval>] (docs/SAMPLING.md; default: off)",
    )
    execution.add_argument(
        "--engine", choices=("obj", "array"), default=None,
        help="cycle-model implementation (docs/ENGINE.md); default: "
        "REPRO_ENGINE env var, then 'obj' -- results are identical",
    )
    run_p.set_defaults(func=cmd_run)

    report_p = sub.add_parser(
        "report", help="re-render a run directory's report without simulating"
    )
    report_p.add_argument("--run-dir", default=None, metavar="DIR",
                          help="run directory to report")
    report_p.add_argument("--experiment", default=None,
                          choices=experiment_names(), metavar="NAME",
                          help="with --out: report this experiment's latest run")
    report_p.add_argument("--out", default="runs", metavar="DIR",
                          help="root of run directories (default: runs)")
    report_p.add_argument("--json", action="store_true",
                          help="print report.json instead of report.md")
    report_p.set_defaults(func=cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "sample", "off") != "off":
        from ..sampling import parse_sample

        try:
            parse_sample(args.sample)
        except ValueError as exc:
            parser.error(str(exc))
    try:
        return args.func(args)
    except (RunIdentityError, FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
