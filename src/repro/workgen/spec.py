"""Declarative workload specs: property knobs, canonical names, tolerances.

A :class:`WorkloadSpec` names the *properties* a generated program must
exhibit — pointer-chase depth, memory-level parallelism, branch entropy,
working-set size, address-slice length, load fraction — rather than any
particular code shape. The generator (:mod:`repro.workgen.generator`)
compiles a spec into a repro-ISA program, and the verifier
(:mod:`repro.workgen.verify`) measures the achieved properties from the
emulator trace and checks each against the tolerances defined here.

Specs travel through the whole stack *by name*: ``encode_name`` renders a
spec + generator seed as a canonical ``gen:...#<seed>`` workload name that
``WorkloadRegistry.build`` dispatches on, so generated workloads are
first-class cells/targets everywhere a workload name is (pool workers,
cache keys, orchestrate manifests, the job server). ``parse_name`` rejects
non-canonical spellings so one spec can never hide behind two names (and
therefore two cache keys).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

#: Bump whenever the generator's program shape or data layout changes in a
#: way that alters simulation results for an unchanged (spec, seed). The
#: version is hashed into every gen: cell key and recorded in orchestrate
#: run manifests, so stale cached results and cross-version resumes are
#: structurally impossible (docs/WORKGEN.md, provenance section).
GENERATOR_VERSION = 1

NAME_PREFIX = "gen:"


class WorkloadSpecError(ValueError):
    """An invalid spec, an unsatisfiable knob combination, or a bad name."""


#: Knob metadata, in canonical (name-encoding and docs-table) order:
#: field -> (short code, render kind, one-line meaning).
KNOBS = {
    "pointer_chase_depth": (
        "pcd", "int",
        "dependent pointer-chase loads per loop iteration and stream",
    ),
    "mlp": (
        "mlp", "int",
        "independent chase streams (memory-level parallelism)",
    ),
    "branch_entropy": (
        "ent", "float",
        "Shannon entropy of the data-dependent hammock branch outcome",
    ),
    "working_set_kib": (
        "ws", "int",
        "unique cache-line footprint touched by one full traversal (KiB)",
    ),
    "slice_length": (
        "sl", "int",
        "ALU ops on the address-generation slice between dependent loads",
    ),
    "load_fraction": (
        "lf", "float",
        "fraction of dynamic instructions that are loads",
    ),
}

#: Acceptance tolerance per knob: requested vs measured must satisfy
#: |measured - requested| <= abs + rel * requested.
TOLERANCES = {
    "pointer_chase_depth": {"abs": 1.0, "rel": 0.0},
    "mlp": {"abs": 1.0, "rel": 0.0},
    "branch_entropy": {"abs": 0.12, "rel": 0.0},
    "working_set_kib": {"abs": 4.0, "rel": 0.15},
    "slice_length": {"abs": 1.0, "rel": 0.0},
    "load_fraction": {"abs": 0.05, "rel": 0.0},
}


@dataclass(frozen=True)
class WorkloadSpec:
    """The six property knobs of one generated workload."""

    pointer_chase_depth: int = 4
    mlp: int = 2
    branch_entropy: float = 0.5
    working_set_kib: int = 256
    slice_length: int = 3
    load_fraction: float = 0.3

    def __post_init__(self):
        def bad(msg: str):
            raise WorkloadSpecError(f"invalid WorkloadSpec: {msg}")

        if not 1 <= self.pointer_chase_depth <= 64:
            bad(f"pointer_chase_depth must be in [1, 64], not {self.pointer_chase_depth}")
        if not 1 <= self.mlp <= 8:
            bad(f"mlp must be in [1, 8], not {self.mlp}")
        if not 0.0 <= self.branch_entropy <= 1.0:
            bad(f"branch_entropy must be in [0, 1], not {self.branch_entropy}")
        if not 32 <= self.working_set_kib <= 8192:
            bad(f"working_set_kib must be in [32, 8192], not {self.working_set_kib}")
        if self.working_set_kib < 24 * self.mlp:
            bad(
                f"working_set_kib={self.working_set_kib} too small for "
                f"mlp={self.mlp}: each stream's traversal cycle must exceed "
                f"the verifier's {24}x-mlp line-recency window "
                f"(need >= {24 * self.mlp} KiB)"
            )
        if not 2 <= self.slice_length <= 16:
            bad(f"slice_length must be in [2, 16], not {self.slice_length}")
        if not 0.05 <= self.load_fraction <= 0.8:
            bad(f"load_fraction must be in [0.05, 0.8], not {self.load_fraction}")

    def knob_values(self) -> dict:
        """Knob values in canonical order."""
        return {name: getattr(self, name) for name in KNOBS}


def _render(kind: str, value) -> str:
    if kind == "int":
        return str(int(value))
    return f"{float(value):.2f}"


def encode_name(spec: WorkloadSpec, seed: int = 0) -> str:
    """The canonical ``gen:`` workload name of (spec, seed)."""
    if not isinstance(seed, int) or seed < 0:
        raise WorkloadSpecError(f"generator seed must be a non-negative int, not {seed!r}")
    parts = [
        f"{code}{_render(kind, getattr(spec, name))}"
        for name, (code, kind, _) in KNOBS.items()
    ]
    return f"{NAME_PREFIX}{','.join(parts)}#{seed}"


def is_generated(name: str) -> bool:
    """Whether a workload name addresses the generator."""
    return name.startswith(NAME_PREFIX)


def parse_name(name: str) -> tuple[WorkloadSpec, int]:
    """Parse a canonical ``gen:`` name back into (spec, seed).

    Raises :class:`WorkloadSpecError` for malformed, unknown-knob, or
    non-canonical spellings — every spec has exactly one valid name, so
    the name can serve as cache-key material.
    """
    if not is_generated(name):
        raise WorkloadSpecError(f"not a generated-workload name: {name!r}")
    body = name[len(NAME_PREFIX):]
    body, sep, seed_text = body.partition("#")
    if not sep or not seed_text.isdigit():
        raise WorkloadSpecError(
            f"generated name {name!r} must end in '#<seed>' (a non-negative int)"
        )
    seed = int(seed_text)
    by_code = {code: (field_name, kind) for field_name, (code, kind, _) in KNOBS.items()}
    values: dict = {}
    for token in body.split(","):
        match = next(
            (code for code in by_code if token.startswith(code) and token != code),
            None,
        )
        if match is None:
            raise WorkloadSpecError(
                f"unknown knob token {token!r} in {name!r}; knobs: "
                f"{sorted(by_code)}"
            )
        field_name, kind = by_code[match]
        if field_name in values:
            raise WorkloadSpecError(f"duplicate knob {field_name!r} in {name!r}")
        raw = token[len(match):]
        try:
            values[field_name] = int(raw) if kind == "int" else float(raw)
        except ValueError:
            raise WorkloadSpecError(
                f"malformed value {raw!r} for knob {field_name!r} in {name!r}"
            ) from None
    missing = [field_name for field_name in KNOBS if field_name not in values]
    if missing:
        raise WorkloadSpecError(f"name {name!r} is missing knobs {missing}")
    spec = WorkloadSpec(**values)
    canonical = encode_name(spec, seed)
    if canonical != name:
        raise WorkloadSpecError(
            f"non-canonical generated name {name!r}; canonical spelling is "
            f"{canonical!r}"
        )
    return spec, seed


def tolerance_of(knob: str) -> dict:
    return TOLERANCES[knob]


def tolerance_text(knob: str) -> str:
    """Human form of one knob's tolerance (docs table, lint-enforced)."""
    tol = TOLERANCES[knob]
    parts = []
    if tol["abs"]:
        parts.append(f"±{_trim(tol['abs'])}")
    if tol["rel"]:
        parts.append(f"±{tol['rel']:.0%}")
    return " + ".join(parts)


def _trim(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:g}"


def within_tolerance(knob: str, requested: float, measured: float) -> bool:
    tol = TOLERANCES[knob]
    return abs(measured - requested) <= tol["abs"] + tol["rel"] * abs(requested)


def entropy_to_prob(entropy: float) -> float:
    """The taken-probability p in [0, 0.5] with binary entropy ``entropy``.

    Inverse of H(p) = -p·log2(p) - (1-p)·log2(1-p), solved by bisection
    (H is monotone on [0, 0.5]).
    """
    if not 0.0 <= entropy <= 1.0:
        raise WorkloadSpecError(f"entropy must be in [0, 1], not {entropy}")
    if entropy == 0.0:
        return 0.0
    if entropy == 1.0:
        return 0.5
    lo, hi = 0.0, 0.5
    for _ in range(60):
        mid = (lo + hi) / 2
        if binary_entropy(mid) < entropy:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def binary_entropy(p: float) -> float:
    """Shannon entropy (bits) of a Bernoulli(p) outcome."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -p * math.log2(p) - (1 - p) * math.log2(1 - p)


def spec_fields() -> list[str]:
    """Dataclass field names, in declaration order (lint cross-check)."""
    return [f.name for f in fields(WorkloadSpec)]
