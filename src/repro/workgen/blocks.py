"""Composable program blocks the generator assembles specs from.

Each block couples an *emission* idiom (straight-line assembly appended to
one shared loop body) with the *memory image* it walks. The blocks are the
property-bearing primitives of :mod:`repro.workgen`:

* :class:`ChaseStream` — an index-linked pointer-chase cycle (the
  ``build_offset_cycle`` idiom: each node stores the successor's *index*,
  so the successor address must be computed through a genuine
  address-generation slice). One stream per unit of MLP; hops per
  iteration set the chase depth; the slice length is padded to order.
* :func:`emit_branch_hammock` — a data-dependent two-sided hammock whose
  outcome bit is drawn per node with probability p chosen so the branch's
  outcome entropy hits the requested value. Both sides retire the same
  instruction count, so the dynamic mix is outcome-independent.
* :func:`emit_strided_walk` — a wrapped strided walk over a small
  cache-hot pad array; used to raise the load fraction without touching
  the working set or the dependence structure.
* pad ALU (:func:`emit_pad_alu`) — an independent accumulator chain; used
  to lower the load fraction.

All emission is straight-line inside one outer loop: no inner loops, so
per-PC branch statistics and per-iteration dependence chains measure
exactly what one knob asked for.
"""

from __future__ import annotations

import random

from ..isa.assembler import Asm

#: Bytes between chase nodes: one 64-byte line per node, no two nodes on
#: the same line, so unique-lines-touched equals nodes-visited.
NODE_STRIDE = 128

#: Pad array geometry: 8 lines (64 words) — cache-hot after the first
#: iteration, and small against the minimum working set (32 KiB).
PAD_LINES = 8
PAD_WORDS = PAD_LINES * 8


class ChaseStream:
    """One pointer-chase stream: registers, memory cycle, hop emission."""

    def __init__(self, index: int, base: int, num_slots: int):
        self.index = index
        self.base = base
        self.num_slots = num_slots
        self.idx_reg = f"r{1 + index}"       # current node index
        self.addr_reg = f"r{9 + index}"      # last computed node address

    def build_memory(
        self, memory: dict[int, int], rng: random.Random, *,
        payload_bits: random.Random | None = None, taken_prob: float = 0.0,
    ) -> int:
        """Materialise the full-cycle index links; returns the start index.

        Node layout: word 0 = successor *index*, word 1 = hammock payload
        bit (streams without a hammock leave it 0). The traversal order is
        one full-length random cycle, so no table prefetcher can predict
        the next address, and the cycle revisits a line only after
        ``num_slots`` hops.
        """
        order = list(range(self.num_slots))
        rng.shuffle(order)
        for pos, slot in enumerate(order):
            addr = self.base + slot * NODE_STRIDE
            memory[addr >> 3] = order[(pos + 1) % self.num_slots]
            bit = 0
            if payload_bits is not None:
                bit = 1 if payload_bits.random() < taken_prob else 0
            memory[(addr + 8) >> 3] = bit
        return order[0]

    def emit_hop(self, asm: Asm, slice_length: int) -> None:
        """One dependent chase hop: index -> address slice -> load.

        The address slice is exactly ``slice_length`` ALU ops, every one
        on the dependence path between the previous load (which produced
        the index) and the next (which consumes the address):
        ``muli`` scales the index, identity ``addi #0`` ops pad the slice
        to order, and the final ``addi`` rebases into the stream's region.
        """
        asm.muli(self.addr_reg, self.idx_reg, NODE_STRIDE)
        for _ in range(slice_length - 2):
            asm.addi(self.addr_reg, self.addr_reg, 0)
        asm.addi(self.addr_reg, self.addr_reg, self.base)
        asm.load(self.idx_reg, self.addr_reg, 0)


def emit_branch_hammock(asm: Asm, payload_addr_reg: str, label: str) -> None:
    """A data-dependent hammock on the node's payload bit.

    Reads the payload word of the node ``payload_addr_reg`` points at (the
    same cache line as the chase load — no extra footprint, no extra miss)
    and branches on its low bit. Taken and fall-through paths both retire
    exactly four instructions after the branch-feeding ``andi``, so every
    per-iteration count is outcome-independent and only the *outcome
    entropy* varies with the payload distribution.
    """
    asm.load("r25", payload_addr_reg, 8)
    asm.andi("r20", "r25", 1)
    asm.bne("r20", "r0", f"{label}_t")
    # fall-through side: 3 ALU + jmp = 4 retired.
    asm.addi("r21", "r21", 1)
    asm.xori("r21", "r21", 3)
    asm.addi("r21", "r21", 0)
    asm.jmp(f"{label}_j")
    asm.label(f"{label}_t")
    # taken side: branch lands here; 4 ALU = 4 retired.
    asm.addi("r21", "r21", 2)
    asm.xori("r21", "r21", 5)
    asm.addi("r21", "r21", 1)
    asm.addi("r21", "r21", 0)
    asm.label(f"{label}_j")


def emit_strided_walk_setup(asm: Asm, pad_base: int) -> None:
    """Prologue for the pad walk: base and offset registers."""
    asm.movi("r18", pad_base)
    asm.movi("r17", 0)


def emit_strided_walk(asm: Asm, num_loads: int) -> None:
    """``num_loads`` cache-hot loads off a wrapped strided offset.

    The offset advances by one word per loop iteration and wraps inside
    the pad array, so the walk is a textbook stride that stays resident
    after the first lap — the loads raise the dynamic load fraction
    without perturbing chase depth, MLP, or the working set.
    """
    asm.addi("r17", "r17", 8)
    asm.andi("r17", "r17", PAD_WORDS * 8 - 1)
    for _ in range(num_loads):
        asm.load_idx("r19", "r18", "r17", 0)


def emit_pad_alu(asm: Asm, num_ops: int) -> None:
    """``num_ops`` independent accumulator ALU ops (lowers load fraction)."""
    for _ in range(num_ops):
        asm.addi("r22", "r22", 1)


def build_pad_array(memory: dict[int, int], base: int) -> None:
    for word in range(PAD_WORDS):
        memory[(base + 8 * word) >> 3] = word + 1
