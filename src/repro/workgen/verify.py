"""Measure achieved workload properties from the functional trace.

The verifier answers "did the generator deliver what the spec asked for?"
— and, for the hand-built analogues, "does each workload still have its
paper-attributed character?" (tests/workloads/test_property_regression).
It consumes only the emulator's :class:`~repro.isa.emulator.ExecutionTrace`
(dependence links, addresses, branch outcomes), never the timing model,
so a measurement costs one functional execution.

Method, per property:

* The trace is segmented at the most-executed *backward* conditional
  branch (the outer loop's backedge); interior segments are iterations.
* A load is a **miss candidate** when its cache line is absent from an
  LRU recency window of :data:`MISS_RECENCY_LINES` lines — the loads the
  memory system could plausibly miss on; pad/payload traffic to resident
  lines is excluded from the dependence metrics this way.
* ``pointer_chase_depth`` — median over interior segments of the deepest
  within-segment chain of dependent miss-candidate loads.
* ``mlp`` — median over interior segments of the number of *root*
  miss-candidate loads (no miss-candidate load ancestor in the segment):
  the independent chains the memory system can overlap.
* ``branch_entropy`` — max over conditional-branch PCs (with at least
  :data:`MIN_BRANCH_SAMPLES` executions) of the Shannon entropy of the
  empirical taken-rate. Frequency entropy, deliberately: it measures the
  outcome *mix*, not any particular predictor's accuracy.
* ``working_set_kib`` — unique 64-byte lines touched by loads/stores.
* ``slice_length`` — median over miss-candidate loads of the ALU-op count
  along the maximal register-producer path back to the nearest load: the
  address-generation slice CRISP would extract.
* ``load_fraction`` — loads over all dynamic instructions.
"""

from __future__ import annotations

import statistics
from collections import OrderedDict
from dataclasses import dataclass

from ..isa.emulator import ExecutionTrace
from ..isa.opcodes import ALU_FUNCTIONS, Opcode
from ..workloads.base import Workload
from .spec import (
    KNOBS,
    WorkloadSpec,
    binary_entropy,
    tolerance_text,
    within_tolerance,
)

#: LRU line-recency window distinguishing plausibly-missing loads from
#: cache-resident traffic (≈ half an L1's worth of lines).
MISS_RECENCY_LINES = 256

#: Minimum dynamic executions before a branch PC's entropy is trusted.
MIN_BRANCH_SAMPLES = 32

#: Cap on the producer walk of the slice measurement.
MAX_SLICE_WALK = 128

LINE_SHIFT = 6


class PropertyVerificationError(AssertionError):
    """Measured properties fall outside a spec's documented tolerance."""


@dataclass(frozen=True)
class MeasuredProperties:
    """Achieved values for every :class:`WorkloadSpec` knob, plus context."""

    pointer_chase_depth: float
    mlp: float
    branch_entropy: float
    working_set_kib: float
    slice_length: float
    load_fraction: float
    dynamic_insts: int = 0
    segments: int = 0

    def knob_values(self) -> dict:
        return {name: getattr(self, name) for name in KNOBS}


def _loop_segments(trace: ExecutionTrace) -> list[tuple[int, int]]:
    """Split the trace at the hottest backward conditional branch.

    Returns ``[start, end)`` position ranges; a trace without a loop
    backedge (or with too few iterations) is one segment.
    """
    best_pc, best_count = None, 0
    for inst in trace.program:
        if inst.is_cond_branch and inst.target is not None and inst.target <= inst.idx:
            count = trace.dynamic_count(inst.idx)
            if count > best_count:
                best_pc, best_count = inst.idx, count
    if best_pc is None or best_count < 4:
        return [(0, len(trace))]
    bounds = trace.pc_index()[best_pc]
    segments = []
    start = 0
    for pos in bounds:
        segments.append((start, pos + 1))
        start = pos + 1
    if start < len(trace):
        segments.append((start, len(trace)))
    return segments


def _interior(values: list[float]) -> list[float]:
    """Steady-state slice: drop the warmup/drain segments when possible."""
    return values[1:-1] if len(values) > 4 else values


def _mark_miss_candidates(trace: ExecutionTrace) -> list[bool]:
    """Per-position flag: load to a line outside the recency window."""
    recent: OrderedDict[int, None] = OrderedDict()
    flags = [False] * len(trace)
    for pos, dyn in enumerate(trace.insts):
        if dyn.addr < 0:
            continue
        line = dyn.addr >> LINE_SHIFT
        if dyn.sinst.is_load and line not in recent:
            flags[pos] = True
        recent[line] = None
        recent.move_to_end(line)
        if len(recent) > MISS_RECENCY_LINES:
            recent.popitem(last=False)
    return flags


def _segment_depth_and_roots(
    trace: ExecutionTrace, start: int, end: int, is_mc: list[bool]
) -> tuple[int, int]:
    """(max dependent miss-load chain, root miss-load count) in one segment."""
    depth: dict[int, int] = {}
    has_mc_ancestor: dict[int, bool] = {}
    max_depth = 0
    roots = 0
    for pos in range(start, end):
        dyn = trace.insts[pos]
        d = 0
        anc = False
        for producer in dyn.producers():
            if producer < start:
                continue
            d = max(d, depth.get(producer, 0))
            if is_mc[producer] or has_mc_ancestor.get(producer, False):
                anc = True
        if is_mc[pos]:
            d += 1
            max_depth = max(max_depth, d)
            if not anc:
                roots += 1
        depth[pos] = d
        has_mc_ancestor[pos] = anc
    return max_depth, roots


def _slice_length_of(trace: ExecutionTrace, pos: int) -> int | None:
    """ALU ops along the max-producer path back to the nearest load."""
    dyn = trace.insts[pos]
    producers = [s for s in dyn.reg_srcs if s >= 0]
    if not producers:
        return None
    cursor = max(producers)
    count = 0
    for _ in range(MAX_SLICE_WALK):
        inst = trace.insts[cursor]
        if inst.sinst.is_load:
            return count
        op = inst.sinst.opcode
        if op in ALU_FUNCTIONS or op is Opcode.MOV:
            count += 1
        producers = [s for s in inst.reg_srcs if s >= 0]
        if not producers:
            return None
        cursor = max(producers)
    return None


def measure_trace(trace: ExecutionTrace) -> MeasuredProperties:
    """Measure every knob from one dynamic trace."""
    is_mc = _mark_miss_candidates(trace)
    segments = _loop_segments(trace)

    depths: list[float] = []
    roots: list[float] = []
    for start, end in segments:
        d, r = _segment_depth_and_roots(trace, start, end, is_mc)
        depths.append(d)
        roots.append(r)

    outcome_counts: dict[int, list[int]] = {}
    lines: set[int] = set()
    loads = 0
    for dyn in trace.insts:
        if dyn.addr >= 0:
            lines.add(dyn.addr >> LINE_SHIFT)
            if dyn.sinst.is_load:
                loads += 1
        if dyn.sinst.is_cond_branch:
            taken, total = outcome_counts.setdefault(dyn.pc, [0, 0])
            outcome_counts[dyn.pc] = [taken + (1 if dyn.taken else 0), total + 1]
    entropy = 0.0
    for taken, total in outcome_counts.values():
        if total >= MIN_BRANCH_SAMPLES:
            entropy = max(entropy, binary_entropy(taken / total))

    slice_lengths = [
        length
        for pos, mc in enumerate(is_mc)
        if mc and (length := _slice_length_of(trace, pos)) is not None
    ]

    total = len(trace)
    return MeasuredProperties(
        pointer_chase_depth=statistics.median(_interior(depths)) if depths else 0.0,
        mlp=statistics.median(_interior(roots)) if roots else 0.0,
        branch_entropy=entropy,
        working_set_kib=len(lines) * (1 << LINE_SHIFT) / 1024.0,
        slice_length=statistics.median(slice_lengths) if slice_lengths else 0.0,
        load_fraction=loads / total if total else 0.0,
        dynamic_insts=total,
        segments=len(segments),
    )


def measure(workload: Workload, max_insts: int = 5_000_000) -> MeasuredProperties:
    return measure_trace(workload.trace(max_insts=max_insts))


def measure_name(
    name: str, variant: str = "ref", scale: float = 1.0
) -> MeasuredProperties:
    """Build a workload by name (``gen:`` or analogue) and measure it."""
    from ..workloads import get_workload

    return measure(get_workload(name, variant=variant, scale=scale))


def violations(spec: WorkloadSpec, measured: MeasuredProperties) -> list[str]:
    """One problem string per knob outside its documented tolerance."""
    problems = []
    for knob in KNOBS:
        requested = getattr(spec, knob)
        achieved = getattr(measured, knob)
        if not within_tolerance(knob, requested, achieved):
            problems.append(
                f"{knob}: requested {requested}, measured {achieved:.3f} "
                f"(tolerance {tolerance_text(knob)})"
            )
    return problems


def verify(spec: WorkloadSpec, measured: MeasuredProperties) -> None:
    """Raise :class:`PropertyVerificationError` on any tolerance miss."""
    problems = violations(spec, measured)
    if problems:
        raise PropertyVerificationError(
            "generated workload missed its spec:\n  " + "\n  ".join(problems)
        )
