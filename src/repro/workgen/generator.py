"""Compile a :class:`~repro.workgen.spec.WorkloadSpec` into a Workload.

The generated program is one outer loop whose straight-line body is
assembled from the block library (:mod:`repro.workgen.blocks`):

* ``mlp`` independent pointer-chase streams, each advancing
  ``pointer_chase_depth`` dependent hops per iteration through its own
  full-cycle index-linked region (``working_set_kib`` split across
  streams), with every hop's address computed through a
  ``slice_length``-op ALU slice;
* one entropy-controlled branch hammock fed by the current node's
  payload bit;
* a strided pad walk or an ALU pad chain, sized to land the dynamic
  ``load_fraction`` on target.

Determinism contract (docs/WORKGEN.md): program *structure* is a pure
function of (spec, scale) — ``variant`` and the generator seed only steer
data placement through :func:`repro.workloads.base.variant_seed`-derived
RNG streams. Train and ref variants therefore share opcode-identical
programs (the FDO flow's train→ref transfer requirement), and the same
(spec, seed, variant, scale) rebuilds a byte-identical workload in every
process — the property the content-addressed cell cache keys rely on.
"""

from __future__ import annotations

import hashlib
import math
import random

from ..isa.assembler import Asm
from ..workloads.base import HEAP, HEAP3, Workload, scaled, variant_seed
from .blocks import (
    NODE_STRIDE,
    PAD_LINES,
    ChaseStream,
    build_pad_array,
    emit_branch_hammock,
    emit_pad_alu,
    emit_strided_walk,
    emit_strided_walk_setup,
)
from .spec import (
    WorkloadSpec,
    WorkloadSpecError,
    entropy_to_prob,
    parse_name,
)

#: Iteration floor: enough hammock outcomes for the empirical entropy to
#: converge (binomial noise stays inside the ±0.12 tolerance).
MIN_ITERATIONS = 256

#: Caps on the load-fraction padding; a spec that needs more is refusing
#: to coexist with its other knobs and is rejected with the math shown.
MAX_PAD_LOADS = 512
MAX_PAD_ALU = 4096


def plan_shape(spec: WorkloadSpec, scale: float = 1.0) -> dict:
    """Resolve a spec into concrete block parameters (pure, no RNG).

    Everything the emitted program's structure depends on is computed
    here, so tests (and the docs) can reason about the shape without
    building memory images.
    """
    depth, mlp, slice_length = (
        spec.pointer_chase_depth, spec.mlp, spec.slice_length,
    )
    # Per-iteration instruction budget before load-fraction padding:
    # chase hops (slice + load each), the hammock (payload load + andi +
    # 4 outcome-independent ops), and the loop increment + backedge.
    loads = mlp * depth + 1
    others = mlp * depth * slice_length + 5 + 2
    f = spec.load_fraction
    pad_loads = 0
    pad_alu = 0
    if f * (loads + others) > loads:
        # Raise the fraction: x extra loads plus the 2-op stride advance.
        pad_loads = math.ceil((f * (loads + others + 2) - loads) / (1.0 - f))
        if pad_loads > MAX_PAD_LOADS:
            raise WorkloadSpecError(
                f"load_fraction={f} needs {pad_loads} pad loads/iteration "
                f"(> {MAX_PAD_LOADS}) against this chase/slice mix; lower "
                "load_fraction or slice_length"
            )
    else:
        pad_alu = max(0, round(loads / f - loads - others))
        if pad_alu > MAX_PAD_ALU:
            raise WorkloadSpecError(
                f"load_fraction={f} needs {pad_alu} pad ALU ops/iteration "
                f"(> {MAX_PAD_ALU}); raise load_fraction"
            )
    total_lines = spec.working_set_kib * 16 - (PAD_LINES if pad_loads else 0)
    slots_per_stream = total_lines // mlp
    iterations = scaled(
        max(math.ceil(slots_per_stream / depth), MIN_ITERATIONS), scale
    )
    region = -(-slots_per_stream * NODE_STRIDE // 0x10000) * 0x10000
    per_iteration = (
        loads + others + pad_alu + (2 + pad_loads if pad_loads else 0)
    )
    if max(math.ceil(slots_per_stream / depth), MIN_ITERATIONS) * per_iteration > 4_500_000:
        raise WorkloadSpecError(
            f"spec needs ~{per_iteration} insts/iteration over "
            f"{slots_per_stream // depth}+ iterations — beyond the emulator's "
            "dynamic budget; shrink working_set_kib or the padding-heavy knobs"
        )
    return {
        "slots_per_stream": slots_per_stream,
        "iterations": iterations,
        "pad_loads": pad_loads,
        "pad_alu": pad_alu,
        "region_bytes": region,
        "taken_prob": entropy_to_prob(spec.branch_entropy),
    }


def _data_rng(variant: str, gen_seed: int, salt: int) -> random.Random:
    """Deterministic data-placement stream: variant × generator seed × salt."""
    return random.Random(
        variant_seed(variant) * 1_000_003 + gen_seed * 7919 + salt
    )


def build_generated(name: str, variant: str = "ref", scale: float = 1.0) -> Workload:
    """Build the Workload a canonical ``gen:`` name describes."""
    spec, gen_seed = parse_name(name)
    shape = plan_shape(spec, scale)

    streams = [
        ChaseStream(
            index=s,
            base=HEAP + s * shape["region_bytes"],
            num_slots=shape["slots_per_stream"],
        )
        for s in range(spec.mlp)
    ]

    memory: dict[int, int] = {}
    starts = []
    for stream in streams:
        starts.append(
            stream.build_memory(
                memory,
                _data_rng(variant, gen_seed, 101 + stream.index),
                payload_bits=(
                    _data_rng(variant, gen_seed, 701) if stream.index == 0 else None
                ),
                taken_prob=shape["taken_prob"],
            )
        )
    if shape["pad_loads"]:
        build_pad_array(memory, HEAP3)

    asm = Asm()
    for stream, start in zip(streams, starts):
        asm.movi(stream.idx_reg, start)
    asm.movi("r21", 0)            # hammock accumulator
    asm.movi("r22", 0)            # pad-ALU accumulator
    asm.movi("r23", 0)            # loop counter
    asm.movi("r24", shape["iterations"])
    if shape["pad_loads"]:
        emit_strided_walk_setup(asm, HEAP3)

    asm.label("loop")
    for stream in streams:
        for _ in range(spec.pointer_chase_depth):
            stream.emit_hop(asm, spec.slice_length)
    emit_branch_hammock(asm, streams[0].addr_reg, "ham")
    if shape["pad_loads"]:
        emit_strided_walk(asm, shape["pad_loads"])
    if shape["pad_alu"]:
        emit_pad_alu(asm, shape["pad_alu"])
    asm.addi("r23", "r23", 1)
    asm.blt("r23", "r24", "loop")
    asm.halt()

    return Workload(
        name=name,
        program=asm.build(),
        memory=memory,
        regs={},
        category="generated",
        variant=variant,
        description=f"generated workload ({name})",
        character=(
            f"{spec.mlp} chase stream(s) x depth {spec.pointer_chase_depth}, "
            f"{spec.slice_length}-op address slices, H={spec.branch_entropy:.2f} "
            f"hammock, {spec.working_set_kib} KiB working set, "
            f"{spec.load_fraction:.2f} load fraction"
        ),
    )


def program_digest(program) -> str:
    """Stable content hash of a program's full listing."""
    return hashlib.sha256(program.disassemble().encode("utf-8")).hexdigest()


def workload_digest(workload: Workload) -> str:
    """Stable content hash of program + memory image + initial registers.

    Two builds of the same (spec, seed, variant, scale) must agree on this
    digest byte-for-byte — the determinism acceptance check.
    """
    h = hashlib.sha256()
    h.update(workload.program.disassemble().encode("utf-8"))
    for word in sorted(workload.memory):
        h.update(f"{word}:{workload.memory[word]};".encode("ascii"))
    for reg in sorted(workload.regs):
        h.update(f"r{reg}={workload.regs[reg]};".encode("ascii"))
    return h.hexdigest()
