"""The ``property_grid`` experiment: knob sweeps vs the prefetcher zoo.

One registered matrix :class:`~repro.orchestrate.Experiment` whose targets
are *generated* workloads: a base :class:`WorkloadSpec` with one knob swept
over a value grid, each point a canonical ``gen:`` name. Instances cross
the simulation modes (ooo/crisp/ibda-*) with optional hardware-prefetcher
sets, so one run answers "how does critical-slice prefetching rank against
stride/stream/BOP/GHB as workload character varies?" — the coverage style
the server-prefetching survey argues for (PAPERS.md).

Everything downstream is the ordinary orchestration machinery: cells pool,
cache (keys carry the generator version), sample, run on either engine,
resume from identity-checked run directories, and lower through the job
server's ``experiment`` op.
"""

from __future__ import annotations

import dataclasses

from ..memory.hierarchy import HierarchyConfig
from ..orchestrate.experiment import Experiment, register
from ..orchestrate.instance import Instance
from ..orchestrate.target import Target
from ..uarch.config import CoreConfig
from .spec import (
    KNOBS,
    WorkloadSpec,
    WorkloadSpecError,
    encode_name,
    is_generated,
    parse_name,
)

#: Named hardware-prefetcher sets instances can pin (the zoo).
PREFETCHER_SETS = {
    "none": (),
    "stride": ("stride",),
    "stream": ("stream",),
    "ghb": ("ghb",),
    "bop": ("bop",),
    "bop+stream": ("bop", "stream"),
}

DEFAULT_VALUES = (2, 4, 8)


@register
class PropertyGrid(Experiment):
    """Sweep one WorkloadSpec knob; race modes (x prefetcher sets) on it."""

    name = "property_grid"
    title = "Property grid: generated-workload knob sweep vs the prefetcher zoo"

    def __init__(
        self,
        scale: float = 1.0,
        workloads: list[str] | None = None,
        seeds: int = 1,
        knob: str = "pointer_chase_depth",
        values: tuple = DEFAULT_VALUES,
        modes: tuple = ("ooo", "crisp"),
        prefetchers: tuple | None = None,
        gen_seed: int = 0,
        base: dict | None = None,
    ):
        if knob not in KNOBS:
            raise WorkloadSpecError(f"unknown knob {knob!r}; knobs: {list(KNOBS)}")
        for pf in prefetchers or ():
            if pf not in PREFETCHER_SETS:
                raise ValueError(
                    f"unknown prefetcher set {pf!r}; known: {sorted(PREFETCHER_SETS)}"
                )
        self.knob = knob
        self.values = tuple(values)
        self.modes = tuple(modes)
        self.prefetchers = tuple(prefetchers) if prefetchers else None
        self.gen_seed = gen_seed
        self.base = dict(base) if base else None
        super().__init__(scale=scale, workloads=workloads, seeds=seeds)
        for name in self.workloads:
            if is_generated(name):
                parse_name(name)  # fail fast on non-canonical spellings

    def defaults(self) -> list[str]:
        base = WorkloadSpec(**(self.base or {}))
        return [
            encode_name(dataclasses.replace(base, **{self.knob: value}), self.gen_seed)
            for value in self.values
        ]

    def args(self) -> dict:
        args = super().args()
        args.update(
            knob=self.knob,
            values=list(self.values),
            modes=list(self.modes),
            prefetchers=list(self.prefetchers) if self.prefetchers else None,
            gen_seed=self.gen_seed,
            base=self.base,
        )
        return args

    def instances(self, target: Target) -> list[Instance]:
        out = []
        for pf in self.prefetchers or (None,):
            if pf is None:
                config, suffix = None, ""
            else:
                config = CoreConfig.skylake(
                    hierarchy=HierarchyConfig(prefetchers=PREFETCHER_SETS[pf])
                )
                suffix = f"@{pf}"
            for mode in self.modes:
                out.append(Instance(name=f"{mode}{suffix}", mode=mode, config=config))
        return out

    def _row_label(self, workload: str) -> str:
        """``gen:...`` is unwieldy as a row label; show the swept knob."""
        try:
            spec, gen_seed = parse_name(workload)
        except WorkloadSpecError:
            return workload
        label = f"{self.knob}={getattr(spec, self.knob)}"
        return label if gen_seed == self.gen_seed else f"{label}#{gen_seed}"

    def table(self, plan, results):
        from ..experiments.common import ExperimentResult

        cells = self.results_map(plan, results)
        names = self.instance_names()
        result = ExperimentResult(
            experiment=self.name,
            title=self.title,
            headers=[self.knob] + [f"{n} IPC" for n in names],
        )
        for workload in self.workloads:
            result.add_row(
                self._row_label(workload),
                *[self.ipc(cells, workload, name) for name in names],
            )
        result.notes.append(
            "rows are generated workloads (docs/WORKGEN.md): the base spec "
            f"with {self.knob} swept; full gen: names in the run manifest"
        )
        if self.seeds > 1:
            result.notes.append(f"median over {self.seeds} seed replicas per cell")
        return result
