"""CLI: ``python -m repro.workgen {emit,measure,grid}``.

The standalone front door of the workload generator (docs/WORKGEN.md):

* ``emit`` compiles one canonical ``gen:`` name and prints its identity —
  static instruction count, program digest, full workload digest — or the
  disassembly with ``--disasm``. Two invocations with the same name,
  variant, and scale print byte-identical output (the determinism
  contract), so ``emit`` doubles as a provenance probe.
* ``measure`` runs the generated program through the emulator, measures
  the achieved properties with the verifier, and prints the requested vs
  measured table; exits 1 if any knob lands outside its tolerance.
* ``grid`` runs the registered ``property_grid`` experiment inline — one
  knob swept over a value list, against the chosen modes and hardware
  prefetcher sets — through the usual execution flags
  (``--jobs/--cache-dir/--sample/--engine``, docs/PARALLEL.md).
"""

from __future__ import annotations

import argparse
import json
import sys

from .generator import build_generated, program_digest, workload_digest
from .grid import PREFETCHER_SETS, PropertyGrid
from .spec import (
    KNOBS,
    WorkloadSpecError,
    parse_name,
    tolerance_text,
    within_tolerance,
)
from .verify import measure_trace


def cmd_emit(args) -> int:
    workload = build_generated(args.name, variant=args.variant, scale=args.scale)
    if args.disasm:
        print(workload.program.disassemble())
        return 0
    info = {
        "name": args.name,
        "variant": args.variant,
        "scale": args.scale,
        "static_insts": len(workload.program.insts),
        "memory_words": len(workload.memory),
        "program_digest": program_digest(workload.program),
        "workload_digest": workload_digest(workload),
    }
    if args.json:
        print(json.dumps(info, indent=1))
    else:
        for key, value in info.items():
            print(f"{key}: {value}")
    return 0


def cmd_measure(args) -> int:
    spec, _ = parse_name(args.name)
    workload = build_generated(args.name, variant=args.variant, scale=args.scale)
    measured = measure_trace(workload.trace(max_insts=args.max_insts))
    requested = spec.knob_values()
    achieved = measured.knob_values()
    rows = []
    failures = 0
    for knob, (_, kind, _) in KNOBS.items():
        ok = within_tolerance(knob, requested[knob], achieved[knob])
        failures += not ok
        fmt = "{:.0f}" if kind == "int" else "{:.3f}"
        rows.append(
            (knob, str(requested[knob]), fmt.format(achieved[knob]),
             tolerance_text(knob), "ok" if ok else "VIOLATION")
        )
    if args.json:
        print(json.dumps({
            "name": args.name,
            "requested": requested,
            "measured": achieved,
            "dynamic_insts": measured.dynamic_insts,
            "segments": measured.segments,
            "ok": failures == 0,
        }, indent=1))
    else:
        widths = [max(len(row[i]) if isinstance(row[i], str) else len(row[i])
                      for row in rows + [HEADER]) for i in range(5)]
        for row in [HEADER] + rows:
            print("  ".join(f"{col:<{w}}" for col, w in zip(row, widths)))
        print(f"dynamic insts: {measured.dynamic_insts}  "
              f"segments: {measured.segments}")
    if failures:
        print(f"{failures} knob(s) outside tolerance", file=sys.stderr)
        return 1
    return 0


HEADER = ("knob", "requested", "measured", "tolerance", "status")


def cmd_grid(args) -> int:
    from ..experiments.common import execution_context

    experiment = PropertyGrid(
        scale=args.scale,
        seeds=args.seeds,
        knob=args.knob,
        values=tuple(_parse_values(args.knob, args.values)),
        modes=tuple(args.modes.split(",")),
        prefetchers=tuple(args.prefetchers.split(",")) if args.prefetchers else None,
        gen_seed=args.gen_seed,
    )
    cache = None
    if not args.no_cache:
        from ..parallel.cache import ResultCache

        cache = ResultCache(args.cache_dir)
    with execution_context(jobs=args.jobs, cache=cache, sample=args.sample,
                           engine=args.engine):
        result = experiment.run_inline()
    print(result.to_markdown() if args.markdown else result.to_text())
    return 0


def _parse_values(knob: str, text: str) -> list:
    kind = KNOBS[knob][1]
    cast = int if kind == "int" else float
    try:
        return [cast(token) for token in text.split(",") if token]
    except ValueError:
        raise WorkloadSpecError(
            f"--values for {knob} must be comma-separated {kind}s, not {text!r}"
        ) from None


def _add_build_args(parser) -> None:
    parser.add_argument("name", help="canonical gen: workload name")
    parser.add_argument("--variant", default="ref",
                        help="data variant (train | ref[#n]; default: ref)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="iteration scale factor (default: 1.0)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workgen",
        description="Parameterised, seeded workload generator (docs/WORKGEN.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    emit_p = sub.add_parser("emit", help="compile a gen: name; print identity")
    _add_build_args(emit_p)
    emit_p.add_argument("--disasm", action="store_true",
                        help="print the program disassembly instead")
    emit_p.add_argument("--json", action="store_true")
    emit_p.set_defaults(func=cmd_emit)

    measure_p = sub.add_parser(
        "measure", help="measure achieved properties; exit 1 on violation"
    )
    _add_build_args(measure_p)
    measure_p.add_argument("--max-insts", type=int, default=5_000_000)
    measure_p.add_argument("--json", action="store_true")
    measure_p.set_defaults(func=cmd_measure)

    grid_p = sub.add_parser(
        "grid", help="run the property_grid experiment inline"
    )
    grid_p.add_argument("--knob", default="pointer_chase_depth",
                        choices=sorted(KNOBS), help="spec field to sweep")
    grid_p.add_argument("--values", default="2,4,8",
                        help="comma-separated knob values (default: 2,4,8)")
    grid_p.add_argument("--modes", default="ooo,crisp",
                        help="comma-separated simulation modes")
    grid_p.add_argument(
        "--prefetchers", default="",
        help="comma-separated hardware-prefetcher sets to cross with modes "
        f"(known: {','.join(sorted(PREFETCHER_SETS))}; default: core preset)",
    )
    grid_p.add_argument("--scale", type=float, default=1.0)
    grid_p.add_argument("--seeds", type=int, default=1,
                        help="seed replicas per cell (median reported)")
    grid_p.add_argument("--gen-seed", type=int, default=0,
                        help="generator data seed baked into the gen: names")
    grid_p.add_argument("--jobs", type=int, default=1)
    grid_p.add_argument("--cache-dir", default=".repro_cache")
    grid_p.add_argument("--no-cache", action="store_true")
    grid_p.add_argument("--sample", default="off")
    grid_p.add_argument("--engine", choices=("obj", "array"), default=None)
    grid_p.add_argument("--markdown", action="store_true")
    grid_p.set_defaults(func=cmd_grid)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except WorkloadSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
