"""Parameterised, seeded workload generation with property verification.

``repro.workgen`` turns the evaluation from "4 hand-built analogues" into
a property space: a :class:`WorkloadSpec` names six workload-character
knobs, the generator compiles it into a deterministic repro-ISA program
(``gen:<spec>#<seed>`` workload names, first-class everywhere a workload
name is), the verifier measures the achieved properties from the emulator
trace, and the ``property_grid`` experiment sweeps a knob against the
prefetcher zoo through the ordinary pool/cache/sampling/engine stack.

See docs/WORKGEN.md for knob semantics, the determinism contract, and the
tolerance table; ``python -m repro.workgen {emit,measure,grid}`` is the
standalone CLI.
"""

from .generator import build_generated, plan_shape, program_digest, workload_digest
from .spec import (
    GENERATOR_VERSION,
    KNOBS,
    TOLERANCES,
    WorkloadSpec,
    WorkloadSpecError,
    encode_name,
    is_generated,
    parse_name,
    tolerance_text,
    within_tolerance,
)
from .verify import (
    MeasuredProperties,
    PropertyVerificationError,
    measure,
    measure_name,
    measure_trace,
    verify,
    violations,
)

__all__ = [
    "GENERATOR_VERSION",
    "KNOBS",
    "MeasuredProperties",
    "PropertyVerificationError",
    "TOLERANCES",
    "WorkloadSpec",
    "WorkloadSpecError",
    "build_generated",
    "encode_name",
    "is_generated",
    "measure",
    "measure_name",
    "measure_trace",
    "parse_name",
    "plan_shape",
    "program_digest",
    "tolerance_text",
    "verify",
    "violations",
    "within_tolerance",
    "workload_digest",
]
