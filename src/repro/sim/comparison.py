"""Paired baseline / CRISP / IBDA evaluation of a workload.

This is the measurement procedure of Section 5.1: the FDO flow (profiling,
slicing, annotation) runs on the *train* input; the annotated binary is
then evaluated on the *ref* input against the OOO baseline and the IBDA
hardware design, all on the same core configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.fdo import CrispConfig, CrispResult, run_crisp_flow
from ..uarch.config import CoreConfig
from ..workloads.base import REGISTRY
from .simulator import SimResult, simulate


@dataclass
class WorkloadComparison:
    """All evaluated modes for one workload on one core configuration."""

    name: str
    crisp_result: CrispResult
    runs: dict[str, SimResult] = field(default_factory=dict)

    def ipc(self, mode: str) -> float:
        return self.runs[mode].ipc

    def speedup(self, mode: str, over: str = "ooo") -> float:
        """IPC ratio of ``mode`` over the baseline (1.0 = no change)."""
        return self.runs[mode].ipc / self.runs[over].ipc

    def improvement_pct(self, mode: str, over: str = "ooo") -> float:
        return (self.speedup(mode, over) - 1.0) * 100.0

    def report(self, mode: str):
        """Per-run :class:`~repro.telemetry.report.RunReport` for ``mode``."""
        return self.runs[mode].report()

    def summary_markdown(self) -> str:
        """Cross-mode comparison table (one row per evaluated mode)."""
        lines = [
            f"# Comparison — {self.name}",
            "",
            "| mode | IPC | vs ooo | rob-head stall cycles |",
            "|---|---|---|---|",
        ]
        for mode, run in self.runs.items():
            lines.append(
                f"| {mode} | {run.ipc:.3f} | {self.improvement_pct(mode):+.1f}% "
                f"| {run.stats.rob_head_stall_cycles} |"
            )
        lines.append("")
        return "\n".join(lines)


def compare_workload(
    name: str,
    *,
    scale: float = 1.0,
    config: CoreConfig | None = None,
    crisp_config: CrispConfig | None = None,
    modes: tuple[str, ...] = ("ooo", "crisp"),
    upc_window: int = 0,
) -> WorkloadComparison:
    """Run the train-input FDO flow, then evaluate ``modes`` on ref input."""
    config = config or CoreConfig.skylake()
    crisp_result = run_crisp_flow(
        name, crisp_config, core_config=config, scale=scale
    )
    ref = REGISTRY.build(name, variant="ref", scale=scale)
    comparison = WorkloadComparison(name=name, crisp_result=crisp_result)
    for mode in modes:
        # Each mode needs a fresh trace-independent pipeline but can share
        # the functional trace (the Workload caches it).
        comparison.runs[mode] = simulate(
            ref,
            mode,
            config=config,
            # Annotations only apply in crisp mode; simulate() rejects them
            # elsewhere to catch mislabeled sweeps.
            critical_pcs=crisp_result.critical_pcs if mode == "crisp" else frozenset(),
            upc_window=upc_window,
        )
    return comparison


def geomean(values: list[float]) -> float:
    """Geometric mean (the paper's summary statistic for speedups)."""
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
