"""Scheduling-delay diagnosis utilities.

These helpers answer the question at the heart of CRISP's mechanism: *how
long do latency-critical instructions sit ready in the reservation station
before the scheduler picks them?* They run a workload under two schedulers
with per-instruction timing recording enabled and report ready->issue
delays for any group of static PCs, plus where each run's cycles went.

Used by the scheduler-behaviour tests and handy for tuning workloads; this
is the software analogue of the per-event pipeline traces a hardware
simulator like Scarab can dump.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.fdo import CrispResult, run_crisp_flow
from ..telemetry.registry import StatsRegistry
from ..uarch.config import CoreConfig
from ..uarch.pipeline import Pipeline
from ..workloads.base import REGISTRY, Workload


@dataclass
class DelayProfile:
    """Ready->issue delay statistics for one PC group in one run."""

    count: int = 0
    total_delay: int = 0
    max_delay: int = 0

    @property
    def mean_delay(self) -> float:
        return self.total_delay / self.count if self.count else 0.0

    def add(self, delay: int) -> None:
        self.count += 1
        self.total_delay += delay
        self.max_delay = max(self.max_delay, delay)


@dataclass
class DiagnosisRun:
    """One instrumented run.

    Cycle/stall numbers are read from the run's stats registry rather than
    copied field-by-field out of ``SimStats`` (every structure registers
    its counters there; see docs/METRICS.md for the names).
    """

    scheduler: str
    telemetry: StatsRegistry
    groups: dict[str, DelayProfile] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.telemetry.value("core.cycles")

    @property
    def ipc(self) -> float:
        cycles = self.cycles
        return self.telemetry.value("core.retired") / cycles if cycles else 0.0

    @property
    def rob_head_stall(self) -> int:
        return self.telemetry.value("core.stall.rob_head_cycles")

    @property
    def fetch_stall(self) -> int:
        return self.telemetry.value("core.stall.fetch_cycles")


def diagnose(
    workload: Workload,
    pc_groups: dict[str, set[int]],
    *,
    critical_pcs: frozenset[int] = frozenset(),
    config: CoreConfig | None = None,
) -> dict[str, DiagnosisRun]:
    """Run baseline and CRISP schedulers with timing recording.

    ``pc_groups`` maps a label (e.g. "delinquent", "burst") to static PCs;
    the result reports each group's ready->issue delay under both
    schedulers.
    """
    config = config or CoreConfig.skylake()
    trace = workload.trace()
    out: dict[str, DiagnosisRun] = {}
    for scheduler in ("oldest_first", "crisp"):
        pipeline = Pipeline(
            trace,
            config.with_scheduler(scheduler),
            critical_pcs=critical_pcs if scheduler == "crisp" else frozenset(),
            record_timing=True,
        )
        pipeline.run()
        run = DiagnosisRun(
            scheduler=scheduler,
            telemetry=pipeline.telemetry,
            groups={label: DelayProfile() for label in pc_groups},
        )
        for seq, issue in pipeline.issue_times.items():
            ready = pipeline.ready_times.get(seq)
            if ready is None:
                continue
            pc = trace[seq].pc
            for label, pcs in pc_groups.items():
                if pc in pcs:
                    run.groups[label].add(issue - ready)
        out[scheduler] = run
    return out


def diagnose_workload(name: str, *, variant: str = "ref", scale: float = 1.0) -> str:
    """End-to-end diagnosis: run the FDO flow, then report delay profiles.

    Returns a human-readable report; the group split is delinquent loads
    vs. their slices vs. everything else.
    """
    result: CrispResult = run_crisp_flow(name, scale=scale)
    workload = REGISTRY.build(name, variant=variant, scale=scale)
    delinquent = set(result.classification.delinquent_loads)
    slices = set(result.critical_pcs) - delinquent
    groups = {"delinquent": delinquent, "slice": slices}
    runs = diagnose(workload, groups, critical_pcs=result.critical_pcs)
    lines = [f"== {name} ({variant}) =="]
    for scheduler, run in runs.items():
        lines.append(
            f"{scheduler:13s} IPC={run.ipc:.3f} cycles={run.cycles}"
            f" robHeadStall={run.rob_head_stall} fetchStall={run.fetch_stall}"
        )
        for label, profile in run.groups.items():
            lines.append(
                f"    {label:11s} n={profile.count:6d}"
                f" meanDelay={profile.mean_delay:6.1f} maxDelay={profile.max_delay}"
            )
    return "\n".join(lines)
