"""Per-instruction pipeline timing export.

A cycle-accurate simulator is only as useful as its visibility; Scarab
ships pipeline debug traces, and this module is the equivalent here: run a
workload with timing recording and export one row per dynamic instruction
-- dispatch, operands-ready, and issue cycles plus identity -- as CSV (for
spreadsheets/pandas) or as dictionaries (for in-process analysis).

The scheduling-delay plots behind DESIGN.md's mechanism notes were made
from exactly this export.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass

from ..uarch.config import CoreConfig
from ..uarch.pipeline import Pipeline
from ..workloads.base import Workload

FIELDS = ("seq", "pc", "opcode", "critical", "dispatch", "ready", "issue", "delay")


@dataclass
class TimingRow:
    seq: int
    pc: int
    opcode: str
    critical: bool
    dispatch: int
    ready: int
    issue: int

    @property
    def delay(self) -> int:
        """Cycles the instruction sat ready before the scheduler picked it."""
        return self.issue - self.ready


def collect_timing(
    workload: Workload,
    *,
    config: CoreConfig | None = None,
    scheduler: str = "oldest_first",
    critical_pcs: frozenset[int] = frozenset(),
    start: int = 0,
    limit: int | None = None,
) -> list[TimingRow]:
    """Run ``workload`` with timing recording; return per-instruction rows.

    ``start``/``limit`` window the export by sequence number (full traces
    of large runs are big; most analyses want a steady-state window).
    """
    config = (config or CoreConfig.skylake()).with_scheduler(scheduler)
    trace = workload.trace()
    pipeline = Pipeline(trace, config, critical_pcs=critical_pcs, record_timing=True)
    pipeline.run()
    end = len(trace) if limit is None else min(len(trace), start + limit)
    rows = []
    for seq in range(start, end):
        issue = pipeline.issue_times.get(seq)
        ready = pipeline.ready_times.get(seq)
        dispatch = pipeline.dispatch_times.get(seq)
        if issue is None or ready is None or dispatch is None:
            continue  # HALT and other non-issuing instructions
        d = trace[seq]
        rows.append(
            TimingRow(
                seq=seq,
                pc=d.pc,
                opcode=d.sinst.opcode.value,
                critical=d.pc in critical_pcs,
                dispatch=dispatch,
                ready=ready,
                issue=issue,
            )
        )
    return rows


def to_csv(rows: list[TimingRow]) -> str:
    """Render timing rows as CSV text (header included)."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(FIELDS)
    for row in rows:
        writer.writerow(
            [row.seq, row.pc, row.opcode, int(row.critical),
             row.dispatch, row.ready, row.issue, row.delay]
        )
    return out.getvalue()


def export_csv(
    workload: Workload,
    path: str,
    **kwargs,
) -> int:
    """Collect timing and write CSV to ``path``; returns the row count."""
    rows = collect_timing(workload, **kwargs)
    with open(path, "w") as handle:
        handle.write(to_csv(rows))
    return len(rows)
