"""Top-level simulation entry points.

``simulate`` runs one workload through one core configuration in one of the
evaluated modes:

* ``"ooo"``   -- the Table 1 baseline (oldest-ready-first scheduler),
* ``"crisp"`` -- CRISP-annotated binary + critical-first scheduler,
* ``"ibda-1k" / "ibda-8k" / "ibda-64k" / "ibda-inf"`` -- hardware IBDA
  marking + critical-first scheduler (the Section 5.2 comparison points).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..core.ibda import make_ibda
from ..resilience.watchdog import Watchdog
from ..telemetry.registry import StatsRegistry
from ..telemetry.report import RunReport, build_report
from ..telemetry.tracer import EventTracer
from ..uarch.config import CoreConfig
from ..uarch.pipeline import Pipeline
from ..uarch.stats import SimStats
from ..workloads.base import Workload

MODES = ("ooo", "crisp", "ibda-1k", "ibda-8k", "ibda-64k", "ibda-inf")

#: Implementations of the cycle model (docs/ENGINE.md): ``"obj"`` is the
#: per-object reference pipeline, ``"array"`` the struct-of-arrays hot
#: path. Both produce identical SimStats digests for every cell.
ENGINES = ("obj", "array")


def resolve_engine(engine: str | None = None) -> str:
    """Validate ``engine`` and apply the defaulting chain.

    ``None`` falls back to the ``REPRO_ENGINE`` environment variable and
    then to ``"obj"``. The env hook exists so an entire test suite or CI
    leg can be flipped to the array engine without threading a flag
    through every call site (``REPRO_ENGINE=array python -m pytest``).
    """
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE") or "obj"
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
    return engine


def pipeline_class(engine: str | None = None) -> type[Pipeline]:
    """The :class:`Pipeline` implementation for ``engine`` (see ENGINES)."""
    if resolve_engine(engine) == "array":
        from ..uarch.array_engine import ArrayPipeline

        return ArrayPipeline
    return Pipeline


def resolve_mode(
    mode: str,
    config: CoreConfig | None = None,
    critical_pcs: frozenset[int] = frozenset(),
):
    """Validate ``mode`` and return ``(config, critical_pcs, ibda)``.

    The shared mode-resolution used by :func:`simulate` and the sampled
    path (:mod:`repro.sampling.sampler`): the returned config carries the
    mode's scheduler policy, ``critical_pcs`` is non-empty only in
    ``"crisp"`` mode, and ``ibda`` is an engine instance for the hardware
    IBDA modes (``None`` otherwise).
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; known: {MODES}")
    if critical_pcs and mode != "crisp":
        raise ValueError(
            f"critical_pcs passed in mode {mode!r}: annotations are only "
            "consumed in 'crisp' mode; this usually means a mislabeled sweep"
        )
    config = config or CoreConfig.skylake()
    if mode == "ooo":
        return config.with_scheduler("oldest_first"), frozenset(), None
    if mode == "crisp":
        return config.with_scheduler("crisp"), frozenset(critical_pcs), None
    size = mode.split("-", 1)[1]
    return config.with_scheduler("crisp"), frozenset(), make_ibda(size)


@dataclass
class SimResult:
    """One timing run."""

    workload_name: str
    mode: str
    stats: SimStats
    critical_pcs: frozenset[int]
    #: The run's stats registry (every structure's counters/gauges); see
    #: docs/METRICS.md. None only for hand-built results.
    registry: StatsRegistry | None = None

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    def report(self) -> RunReport:
        """Render this run as a markdown/JSON report (docs/OBSERVABILITY.md)."""
        return build_report(self)


def simulate(
    workload: Workload,
    mode: str = "ooo",
    *,
    config: CoreConfig | None = None,
    critical_pcs: frozenset[int] = frozenset(),
    upc_window: int = 0,
    tracer: EventTracer | None = None,
    invariants: str | None = None,
    watchdog: Watchdog | None = None,
    crash_dir: str | None = None,
    engine: str | None = None,
) -> SimResult:
    """Run ``workload`` in ``mode`` and return the result.

    ``critical_pcs`` is required (and only used) in ``"crisp"`` mode: the
    annotation produced by the FDO flow on the train input. The binary is
    laid out with the one-byte prefix on those instructions, so i-cache
    effects of the annotation are part of the measurement (Section 5.7).
    Passing annotations in any other mode raises :class:`ValueError` —
    they would be silently ignored, which almost always means a mislabeled
    sweep.

    Pass an :class:`~repro.telemetry.tracer.EventTracer` to stream pipeline
    events (and populate the latency/delay histograms) during the run.

    Resilience knobs (docs/RESILIENCE.md): ``invariants`` selects the audit
    cadence (``"off"``/``"periodic"``/``"full"``; default off), ``watchdog``
    overrides livelock/cycle limits, and ``crash_dir`` makes failures write
    a crash bundle there (shorthand for a watchdog with that directory).

    ``engine`` picks the cycle-model implementation (``"obj"``/``"array"``,
    default from ``REPRO_ENGINE`` then ``"obj"``); results are identical
    either way — see docs/ENGINE.md for the equivalence contract.
    """
    config, used, ibda = resolve_mode(mode, config, critical_pcs)
    if watchdog is None and crash_dir is not None:
        watchdog = Watchdog(crash_dir=crash_dir)
    run_context = {"workload": workload.name, "mode": mode}
    resilience = dict(invariants=invariants, watchdog=watchdog, run_context=run_context)
    trace = workload.trace()
    pipeline = pipeline_class(engine)(
        trace,
        config,
        critical_pcs=used,
        ibda=ibda,
        upc_window=upc_window,
        tracer=tracer,
        **resilience,
    )
    stats = pipeline.run()
    return SimResult(workload.name, mode, stats, used, registry=pipeline.telemetry)
