"""Top-level simulation API."""

from .comparison import WorkloadComparison, compare_workload, geomean
from .simulator import (
    ENGINES,
    MODES,
    SimResult,
    pipeline_class,
    resolve_engine,
    resolve_mode,
    simulate,
)
from .trace_export import TimingRow, collect_timing, export_csv, to_csv

__all__ = [
    "ENGINES",
    "MODES",
    "SimResult",
    "pipeline_class",
    "resolve_engine",
    "WorkloadComparison",
    "compare_workload",
    "geomean",
    "resolve_mode",
    "simulate",
    "TimingRow",
    "collect_timing",
    "export_csv",
    "to_csv",
]
