"""Top-level simulation API."""

from .comparison import WorkloadComparison, compare_workload, geomean
from .simulator import MODES, SimResult, resolve_mode, simulate
from .trace_export import TimingRow, collect_timing, export_csv, to_csv

__all__ = [
    "MODES",
    "SimResult",
    "WorkloadComparison",
    "compare_workload",
    "geomean",
    "resolve_mode",
    "simulate",
    "TimingRow",
    "collect_timing",
    "export_csv",
    "to_csv",
]
