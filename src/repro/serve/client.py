"""Synchronous client for the simulation job server.

:class:`ServeClient` speaks the line-oriented JSON protocol
(:mod:`repro.serve.protocol`) over a UNIX or TCP socket, with blocking
stdlib sockets only — usable from scripts, tests, and the CI smoke job
without touching asyncio. ``python -m repro.serve.client`` wraps it in a
small CLI (one op per invocation, response printed as JSON).

The client honours the server's backpressure contract:
:meth:`ServeClient.submit_with_retry` sleeps out ``retry_after`` hints
(capped by its own deadline) instead of hammering a busy server.
"""

from __future__ import annotations

import json
import socket
import sys
import time

from . import protocol


class ServeError(RuntimeError):
    """A failure response from the server (carries the machine code)."""

    def __init__(self, response: dict):
        super().__init__(response.get("error", "server error"))
        self.code = response.get("code")
        self.response = response


class ServeClient:
    """One connection to a running :class:`~repro.serve.server.SimServer`.

    Exactly one of ``socket_path`` (UNIX) or ``address`` (TCP
    ``(host, port)``) selects the transport. The connection is opened
    lazily on the first request and is usable as a context manager.
    """

    def __init__(self, *, socket_path: str | None = None,
                 address: tuple | None = None, timeout: float = 60.0):
        if (socket_path is None) == (address is None):
            raise ValueError("pass exactly one of socket_path or address")
        self.socket_path = socket_path
        self.address = tuple(address) if address else None
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None

    # -- plumbing -------------------------------------------------------------

    def _connect(self) -> None:
        if self._sock is not None:
            return
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
        else:
            sock = socket.create_connection(self.address, timeout=self.timeout)
        self._sock = sock
        self._file = sock.makefile("rb")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServeClient":
        self._connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, message: dict) -> dict:
        """Send one request, return the raw response dict (ok or not)."""
        self._connect()
        self._sock.sendall(protocol.encode(message))
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode(line)

    def call(self, message: dict) -> dict:
        """Like :meth:`request` but raises :class:`ServeError` on failure."""
        response = self.request(message)
        if not response.get("ok"):
            raise ServeError(response)
        return response

    # -- ops ------------------------------------------------------------------

    def submit(self, cells: list, *, priority: str | None = None) -> dict:
        message = {"op": "submit", "cells": cells}
        if priority is not None:
            message["priority"] = priority
        return self.call(message)

    def submit_with_retry(self, cells: list, *, priority: str | None = None,
                          deadline: float = 120.0) -> dict:
        """Submit, sleeping out ``busy`` rejections until ``deadline``."""
        start = time.monotonic()
        while True:
            response = self.request(
                {"op": "submit", "cells": cells,
                 **({"priority": priority} if priority else {})})
            if response.get("ok"):
                return response
            if response.get("code") != protocol.E_BUSY:
                raise ServeError(response)
            wait_s = float(response.get("retry_after", 1.0))
            if time.monotonic() + wait_s - start > deadline:
                raise ServeError(response)
            time.sleep(wait_s)

    def sweep(self, workloads: list, modes: list, *, scale: float = 1.0,
              priority: str | None = None, **extras) -> dict:
        message = {"op": "sweep", "workloads": workloads, "modes": modes,
                   "scale": scale, **extras}
        if priority is not None:
            message["priority"] = priority
        return self.call(message)

    def status(self, job: str) -> dict:
        return self.call({"op": "status", "job": job})

    def wait(self, job: str, *, timeout: float | None = None) -> dict:
        return self.call({"op": "wait", "job": job, "timeout": timeout})

    def health(self) -> dict:
        return self.call({"op": "health"})

    def stats(self) -> dict:
        return self.call({"op": "stats"})

    def drain(self) -> dict:
        return self.call({"op": "drain"})


# -- CLI -----------------------------------------------------------------------


def _build_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.client",
        description="Talk to a running repro.serve job server.",
    )
    parser.add_argument("--socket", metavar="PATH",
                        help="UNIX socket of the server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int)
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="socket timeout in seconds (default 60)")
    ops = parser.add_subparsers(dest="op", required=True)

    submit = ops.add_parser("submit", help="run one cell")
    submit.add_argument("--workload", required=True)
    submit.add_argument("--mode", required=True)
    submit.add_argument("--scale", type=float, default=1.0)
    submit.add_argument("--cycle-budget", type=int, default=None)
    submit.add_argument("--engine", choices=("obj", "array"), default=None)
    submit.add_argument("--priority", choices=protocol.PRIORITIES)
    submit.add_argument("--wait", action="store_true",
                        help="block until the job is terminal")

    sweep = ops.add_parser("sweep", help="run a workloads x modes matrix")
    sweep.add_argument("--workloads", nargs="+", required=True)
    sweep.add_argument("--modes", nargs="+", required=True)
    sweep.add_argument("--scale", type=float, default=1.0)
    sweep.add_argument("--priority", choices=protocol.PRIORITIES)
    sweep.add_argument("--wait", action="store_true")

    status = ops.add_parser("status", help="one job's status row")
    status.add_argument("job")
    wait = ops.add_parser("wait", help="block until a job is terminal")
    wait.add_argument("job")
    wait.add_argument("--timeout", type=float, default=None)
    ops.add_parser("health", help="server health summary")
    ops.add_parser("stats", help="server counter snapshot")
    ops.add_parser("drain", help="graceful drain (stops the server)")
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if (args.socket is None) == (args.port is None):
        print("error: pass exactly one of --socket or --port",
              file=sys.stderr)
        return 2
    client = ServeClient(
        socket_path=args.socket,
        address=(args.host, args.port) if args.port else None,
        timeout=args.timeout,
    )
    try:
        with client:
            if args.op == "submit":
                cell = {"workload": args.workload, "mode": args.mode,
                        "scale": args.scale}
                if args.cycle_budget is not None:
                    cell["cycle_budget"] = args.cycle_budget
                if args.engine is not None:
                    cell["engine"] = args.engine
                response = client.submit([cell], priority=args.priority)
                if args.wait:
                    response = client.wait(response["job"])
            elif args.op == "sweep":
                response = client.sweep(
                    args.workloads, args.modes, scale=args.scale,
                    priority=args.priority)
                if args.wait:
                    response = client.wait(response["job"])
            elif args.op == "status":
                response = client.status(args.job)
            elif args.op == "wait":
                response = client.wait(args.job, timeout=args.timeout)
            else:
                response = client.call({"op": args.op})
    except ServeError as exc:
        print(json.dumps(exc.response, indent=2, sort_keys=True))
        return 1
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
