"""``serve.*`` telemetry group: job-server counters.

Same collector-backed pattern as the ``parallel.*`` group: the server
bumps plain integer fields and the registry reads them on demand, so the
request path pays nothing for observability. The catalog is registered
into :func:`repro.telemetry.metrics_catalog` and therefore lint-enforced
against docs/METRICS.md by ``scripts/check_metrics_docs.py``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ServeStats:
    """Lifetime counters of one :class:`~repro.serve.server.SimServer`."""

    jobs_submitted: int = 0
    jobs_rejected: int = 0
    jobs_done: int = 0
    jobs_failed: int = 0
    jobs_drained: int = 0
    cells_total: int = 0
    cells_coalesced: int = 0
    cells_retried: int = 0
    hung_cells: int = 0
    pool_rebuilds: int = 0

    def register_into(self, registry) -> None:
        """Register collector-backed counters (docs/METRICS.md contract)."""
        spec = (
            ("serve.jobs_submitted", "jobs_submitted",
             "jobs accepted past admission control"),
            ("serve.jobs_rejected", "jobs_rejected",
             "jobs rejected by backpressure (queue full) or during drain"),
            ("serve.jobs_done", "jobs_done",
             "jobs that reached the done state (every cell ok)"),
            ("serve.jobs_failed", "jobs_failed",
             "jobs that reached the failed state (>= 1 cell failed)"),
            ("serve.jobs_drained", "jobs_drained",
             "incomplete jobs checkpointed by a graceful drain"),
            ("serve.cells_total", "cells_total",
             "cells requested across all admitted jobs (before coalescing)"),
            ("serve.cells_coalesced", "cells_coalesced",
             "cells answered by attaching to an identical in-flight cell"),
            ("serve.cells_retried", "cells_retried",
             "cell attempts re-run after a transient failure"),
            ("serve.hung_cells", "hung_cells",
             "in-flight cells past the wall-clock deadline (worker hung)"),
            ("serve.pool_rebuilds", "pool_rebuilds",
             "worker pools respawned after a crash or hang"),
        )
        for name, field_name, desc in spec:
            registry.counter(
                name,
                unit="events",
                desc=desc,
                owner="job server",
                figure="",
                collect=lambda f=field_name: getattr(self, f),
            )

    def snapshot(self) -> dict:
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_rejected": self.jobs_rejected,
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "jobs_drained": self.jobs_drained,
            "cells_total": self.cells_total,
            "cells_coalesced": self.cells_coalesced,
            "cells_retried": self.cells_retried,
            "hung_cells": self.hung_cells,
            "pool_rebuilds": self.pool_rebuilds,
        }
