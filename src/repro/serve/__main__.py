"""CLI front door: ``python -m repro.serve``.

Starts a :class:`~repro.serve.server.SimServer` on a UNIX socket
(``--socket``) or TCP port (``--port``) and serves until SIGTERM/SIGINT,
which triggers a graceful drain: admission stops, in-flight cells finish
(up to ``--drain-timeout``), incomplete sweep jobs are checkpointed into
``--drain-dir`` in the resumable-sweep format, and only then does the
process exit. See docs/SERVE.md.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from ..parallel.cache import ResultCache
from ..resilience.policy import RetryPolicy
from .server import DEFAULT_QUEUE_LIMITS, SimServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Fault-tolerant simulation job server (docs/SERVE.md).",
    )
    transport = parser.add_mutually_exclusive_group(required=True)
    transport.add_argument("--socket", metavar="PATH",
                           help="serve on a UNIX socket at PATH")
    transport.add_argument("--port", type=int,
                           help="serve on TCP 127.0.0.1:PORT (0 = pick free)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP bind address (default 127.0.0.1)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes (default 2)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed result cache directory")
    parser.add_argument("--retries", type=int, default=2,
                        help="extra attempts per transient cell failure")
    parser.add_argument("--retry-backoff", type=float, default=0.05,
                        metavar="SECONDS",
                        help="base backoff delay between attempts")
    parser.add_argument("--deadline", type=float, default=600.0,
                        metavar="SECONDS",
                        help="per-cell wall-clock retry deadline")
    parser.add_argument("--cell-deadline", type=float, default=300.0,
                        metavar="SECONDS",
                        help="hung-worker detection threshold "
                             "(0 disables hang supervision)")
    parser.add_argument("--queue-interactive", type=int,
                        default=DEFAULT_QUEUE_LIMITS["interactive"],
                        metavar="CELLS", help="interactive admission bound")
    parser.add_argument("--queue-bulk", type=int,
                        default=DEFAULT_QUEUE_LIMITS["bulk"],
                        metavar="CELLS", help="bulk admission bound")
    parser.add_argument("--drain-dir", default="serve_drain", metavar="DIR",
                        help="where drain checkpoints are written")
    parser.add_argument("--drain-timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="how long a drain waits for in-flight cells")
    return parser


def build_server(args) -> SimServer:
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    policy = RetryPolicy(
        retries=args.retries,
        backoff_base=args.retry_backoff,
        backoff_max=5.0,
        deadline=args.deadline,
    )
    return SimServer(
        jobs=args.jobs,
        cache=cache,
        policy=policy,
        queue_limits={"interactive": args.queue_interactive,
                      "bulk": args.queue_bulk},
        cell_deadline=args.cell_deadline or None,
        drain_dir=args.drain_dir,
        drain_timeout=args.drain_timeout,
    )


async def serve(args) -> None:
    server = build_server(args)
    if args.socket is not None:
        await server.start(socket_path=args.socket)
        where = args.socket
    else:
        await server.start(host=args.host, port=args.port)
        where = "{}:{}".format(*server.address)
    server.install_signal_handlers()
    print(f"repro.serve: listening on {where} "
          f"({args.jobs} workers)", flush=True)
    await server.run_until_stopped()
    print("repro.serve: drained, exiting", flush=True)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    asyncio.run(serve(args))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
