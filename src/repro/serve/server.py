"""The fault-tolerant simulation job server.

:class:`SimServer` is an asyncio front door over the ``repro.parallel``
process pool and content-addressed result cache, engineered so that the
interesting question — *how does it fail?* — has boring answers:

* **Supervision** — a worker process dying (``BrokenProcessPool``) or
  hanging (no completion past the wall-clock ``cell_deadline``) costs
  exactly the in-flight cells: the pool is respawned once per incident
  and only the lost cells are re-enqueued, as transient failures under
  the shared :class:`~repro.resilience.policy.RetryPolicy`.
* **Backpressure** — two bounded admission queues (``interactive`` ahead
  of ``bulk``); a full queue rejects the job with a ``retry_after`` hint
  instead of queueing unboundedly or blocking the socket.
* **Coalescing** — cells are identified by their content hash
  (:func:`~repro.parallel.cellkey.cell_key`): N clients asking for the
  same cell share one execution and one cache store.
* **Graceful drain** — SIGTERM (or the ``drain`` op) stops admission,
  lets in-flight cells finish, checkpoints incomplete sweep jobs in the
  resumable-sweep format (``python -m repro.experiments sweep --resume``
  completes them), and only then stops.
* **Determinism** — cells are pure functions of their spec
  (docs/PARALLEL.md), so no matter how many crashes, hangs, retries, or
  corrupt cache entries a run suffers, a job that reaches ``done``
  carries results bit-identical to an unfaulted run
  (``tests/serve/test_chaos.py``).

Everything except the pool workers runs on one event loop; plain
attribute updates are therefore race-free and the only locks are around
pool replacement.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..parallel.cache import ResultCache
from ..parallel.cellkey import CellSpec, cell_key
from ..parallel import executor as _executor
from ..parallel.executor import (
    PoolStats,
    _crash_outcome,
    _result_from_failure,
    _result_from_payload,
)
from ..resilience.policy import RetryPolicy
from . import protocol
from .jobs import Job
from .protocol import ProtocolError
from .telemetry import ServeStats

#: Default bounded-queue capacities, in *cells* (not jobs): interactive
#: stays shallow so its latency promise means something; bulk absorbs
#: sweep matrices.
DEFAULT_QUEUE_LIMITS = {"interactive": 64, "bulk": 1024}


@dataclass
class _Execution:
    """One in-flight-or-queued cell, shared by every coalesced subscriber."""

    key: str
    spec: CellSpec
    priority: str
    subscribers: list = field(default_factory=list)  # (job, cell_index)
    attempts: int = 0
    created: float = field(default_factory=time.monotonic)
    #: Wall-clock start of the *current* attempt; None while not running.
    started: float | None = None
    resolved: bool = False


class SimServer:
    """Supervised, backpressured job server over the pool + cache.

    Parameters
    ----------
    jobs:
        Worker processes (and the max number of concurrently running
        cells).
    cache:
        Optional :class:`~repro.parallel.cache.ResultCache`; cache hits
        skip the pool entirely, and corrupt entries degrade to misses
        (re-simulate and overwrite).
    policy:
        Shared :class:`~repro.resilience.policy.RetryPolicy` for
        transient cell failures (crashes, hangs, cycle-budget timeouts).
    queue_limits:
        Per-priority admission bounds, in cells.
    cell_deadline:
        Wall-clock seconds one attempt may run before the supervisor
        declares the worker hung and kills the pool. ``None`` disables
        hang detection (crashes are still supervised).
    drain_dir:
        Where drain checkpoints for incomplete sweep jobs are written.
    """

    def __init__(
        self,
        *,
        jobs: int = 2,
        cache: ResultCache | None = None,
        policy: RetryPolicy | None = None,
        queue_limits: dict | None = None,
        cell_deadline: float | None = 300.0,
        drain_dir: str = "serve_drain",
        drain_timeout: float = 30.0,
        tick: float = 0.05,
        stats: ServeStats | None = None,
        pool_stats: PoolStats | None = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.policy = policy if policy is not None else RetryPolicy(
            retries=2, backoff_base=0.05, backoff_max=5.0, deadline=600.0)
        self.queue_limits = dict(DEFAULT_QUEUE_LIMITS)
        if queue_limits:
            self.queue_limits.update(queue_limits)
        self.cell_deadline = cell_deadline
        self.drain_dir = drain_dir
        self.drain_timeout = drain_timeout
        self.tick = tick
        self.stats = stats if stats is not None else ServeStats()
        self.pool_stats = pool_stats if pool_stats is not None else PoolStats()

        self._jobs: dict[str, Job] = {}
        self._queues: dict[str, deque] = {
            name: deque() for name in protocol.PRIORITIES}
        #: Unresolved executions by cell key — the coalescing index.
        self._index: dict[str, _Execution] = {}
        #: Executions whose attempt is currently on the pool.
        self._running: dict[str, _Execution] = {}
        self._active = 0
        self._pool: ProcessPoolExecutor | None = None
        self._pool_gen = 0
        self._pool_lock = asyncio.Lock()
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        self._draining = False
        self._drained_summary: dict | None = None
        self._started_at = time.monotonic()
        #: EWMA of completed cell wall-clock, for retry_after hints.
        self._avg_cell_s = 1.0
        self._tasks: set[asyncio.Task] = set()
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle ------------------------------------------------------------

    def _spawn_pool(self) -> None:
        self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        self._pool_gen += 1

    async def start(self, *, socket_path: str | None = None,
                    host: str = "127.0.0.1", port: int = 0) -> None:
        """Start the transport and the dispatcher/watchdog tasks.

        ``socket_path`` selects a UNIX socket; otherwise TCP on
        ``host:port`` (port 0 picks a free port; see :attr:`address`).
        """
        self._spawn_pool()
        if socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=socket_path,
                limit=protocol.MAX_LINE_BYTES)
            self.address = socket_path
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host=host, port=port,
                limit=protocol.MAX_LINE_BYTES)
            self.address = self._server.sockets[0].getsockname()[:2]
        self._background(self._dispatch_loop())
        self._background(self._watchdog_loop())

    def _background(self, coro) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def stop(self) -> None:
        """Tear everything down (does not drain; see :meth:`drain`)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        if self._pool is not None:
            # Kill outright rather than shutdown-and-wait: any cell still
            # running here was already checkpointed away by drain() (or
            # the caller chose a hard stop), and a hung worker must not
            # be able to block process exit.
            self._kill_workers()
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._stopped.set()

    async def run_until_stopped(self) -> None:
        """Serve until a drain (or :meth:`stop`) completes."""
        await self._stopped.wait()
        # Give in-flight connection handlers one tick to flush responses.
        await asyncio.sleep(self.tick)
        await self.stop()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger a graceful drain (docs/SERVE.md)."""
        import signal

        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: loop.create_task(self.drain()))

    # -- admission ------------------------------------------------------------

    def _queued_cells(self, priority: str) -> int:
        return len(self._queues[priority])

    def _retry_after(self, priority: str) -> float:
        backlog = self._queued_cells(priority) + self._active
        return round(max(0.1, backlog * self._avg_cell_s / self.jobs), 3)

    def admit(self, specs: list[CellSpec], priority: str,
              **job_meta) -> tuple[Job | None, dict | None]:
        """Admit one job, or return (None, rejection-response).

        Counts only genuinely new cells against the queue bound:
        duplicates of in-flight cells coalesce without queue entries.
        """
        if self._draining:
            self.stats.jobs_rejected += 1
            return None, protocol.error_response(
                protocol.E_DRAINING, "server is draining; not admitting jobs")
        keys = [cell_key(spec) for spec in specs]
        fresh = [k for k in keys if k not in self._index]
        # Duplicate keys within one job coalesce onto one execution too.
        fresh_unique = len(set(fresh))
        if self._queued_cells(priority) + fresh_unique > self.queue_limits[priority]:
            self.stats.jobs_rejected += 1
            return None, protocol.error_response(
                protocol.E_BUSY,
                f"{priority} queue is full "
                f"({self.queue_limits[priority]} cells)",
                retry_after=self._retry_after(priority),
            )
        job = Job.create(priority, specs, keys, **job_meta)
        self._jobs[job.id] = job
        self.stats.jobs_submitted += 1
        self.stats.cells_total += len(specs)
        for index, (spec, key) in enumerate(zip(specs, keys)):
            execution = self._index.get(key)
            if execution is not None and not execution.resolved:
                execution.subscribers.append((job, index))
                self.stats.cells_coalesced += 1
                continue
            execution = _Execution(key=key, spec=spec, priority=priority,
                                   subscribers=[(job, index)])
            self._index[key] = execution
            self._queues[priority].append(execution)
        self._wake.set()
        return job, None

    # -- dispatch -------------------------------------------------------------

    def _pop_next(self) -> _Execution | None:
        for priority in protocol.PRIORITIES:  # interactive first
            if self._queues[priority]:
                return self._queues[priority].popleft()
        return None

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self._draining:
                continue
            while self._active < self.jobs:
                execution = self._pop_next()
                if execution is None:
                    break
                self._active += 1
                self._background(self._run_execution(execution))

    async def _run_execution(self, execution: _Execution) -> None:
        try:
            await self._execute(execution)
        finally:
            self._active -= 1
            self._wake.set()

    async def _execute(self, execution: _Execution) -> None:
        spec, key = execution.spec, execution.key
        if self.cache is not None:
            payload = self.cache.get(key)  # corrupt entries degrade to miss
            if payload is not None:
                self.pool_stats.cells_cached += 1
                self._resolve(execution, _result_from_payload(
                    spec, key, payload, attempts=0, from_cache=True))
                return
        loop = asyncio.get_running_loop()
        while True:
            execution.attempts += 1
            self.pool_stats.cells_executed += 1
            execution.started = time.monotonic()
            self._running[key] = execution
            generation = self._pool_gen
            try:
                # Looked up through the module (not imported by name) so
                # the worker entry point stays patchable — the chaos and
                # drain tests rely on swapping it before workers fork.
                outcome = await loop.run_in_executor(
                    self._pool, _executor._pool_run_cell, spec)
            except BrokenProcessPool:
                # The worker died (crash, OOM kill, or our own hang
                # killer). Respawn the pool once per incident; this cell
                # goes through the normal transient-retry path.
                self.pool_stats.worker_crashes += 1
                await self._rebuild_pool(generation)
                outcome = _crash_outcome()
            except Exception as exc:  # noqa: BLE001 — a server must not hang
                # run_cells lets configuration errors (ValueError)
                # propagate and abort the whole batch; a server instead
                # pins the failure on the one bad cell — anything else
                # escaping the worker wrapper resolves as a hard failure
                # rather than leaving subscribers waiting forever.
                outcome = {
                    "ok": False, "transient": False,
                    "error": str(exc), "error_type": type(exc).__name__,
                }
            finally:
                self._running.pop(key, None)
                execution.started = None
            if outcome["ok"]:
                self._note_duration(time.monotonic() - execution.created)
                result = _result_from_payload(
                    spec, key, outcome["payload"],
                    attempts=execution.attempts, from_cache=False)
                if self.cache is not None:
                    self.cache.put(key, dict(outcome["payload"]))
                self._resolve(execution, result)
                return
            if outcome.get("error_type") == "CellTimeout":
                self.pool_stats.timeouts += 1
            elapsed = time.monotonic() - execution.created
            if outcome.get("transient") and self.policy.should_retry(
                    execution.attempts, elapsed=elapsed):
                self.stats.cells_retried += 1
                self.pool_stats.retries += 1
                delay = self.policy.delay(execution.attempts, key)
                if delay:
                    await asyncio.sleep(delay)
                continue
            if outcome.get("transient") and self.policy.exceeded_deadline(elapsed):
                outcome = dict(outcome)
                outcome["error_type"] = "DeadlineExceeded"
                outcome["error"] = (
                    f"cell spent {elapsed:.1f}s failing transiently "
                    f"(deadline {self.policy.deadline}s): {outcome['error']}")
            self.pool_stats.hard_failures += 1
            self._resolve(execution, _result_from_failure(
                spec, key, outcome, attempts=execution.attempts))
            return

    def _note_duration(self, seconds: float) -> None:
        self._avg_cell_s += 0.2 * (seconds - self._avg_cell_s)

    def _resolve(self, execution: _Execution, result) -> None:
        """Fan one resolved cell out to every subscriber, exactly once."""
        if execution.resolved:
            return
        execution.resolved = True
        self._index.pop(execution.key, None)
        for job, index in execution.subscribers:
            if job.cell_done(index, result):
                if job.state == "failed":
                    self.stats.jobs_failed += 1
                else:
                    self.stats.jobs_done += 1

    # -- supervision ----------------------------------------------------------

    async def _rebuild_pool(self, generation: int) -> None:
        """Replace the broken pool, once per incident.

        Every in-flight future of a broken pool raises; only the first
        arrival (matching generation) respawns, the rest just retry onto
        the already-fresh pool.
        """
        async with self._pool_lock:
            if generation != self._pool_gen:
                return
            self.stats.pool_rebuilds += 1
            self.pool_stats.pool_rebuilds += 1
            broken = self._pool
            self._spawn_pool()
            if broken is not None:
                broken.shutdown(wait=False, cancel_futures=True)

    def _kill_workers(self) -> int:
        """SIGKILL every pool worker; the hang surfaces as a crash."""
        processes = getattr(self._pool, "_processes", None) or {}
        killed = 0
        for process in list(processes.values()):
            try:
                process.kill()
                killed += 1
            except (OSError, ValueError):
                pass  # already gone
        return killed

    async def _watchdog_loop(self) -> None:
        """Detect hung workers: no completion past the cell deadline."""
        while True:
            await asyncio.sleep(self.tick)
            if self.cell_deadline is None or not self._running:
                continue
            now = time.monotonic()
            hung = [
                execution for execution in self._running.values()
                if execution.started is not None
                and now - execution.started > self.cell_deadline
            ]
            if not hung:
                continue
            self.stats.hung_cells += len(hung)
            # Killing the workers breaks every in-flight future; the
            # executions then take the BrokenProcessPool path above
            # (respawn + retry), which is exactly what we want.
            self._kill_workers()

    # -- drain ----------------------------------------------------------------

    async def drain(self) -> dict:
        """Graceful shutdown: stop admitting, finish or checkpoint, stop.

        Idempotent; returns a summary dict (also the ``drain`` response).
        """
        if self._drained_summary is not None:
            return self._drained_summary
        self._draining = True
        deadline = time.monotonic() + self.drain_timeout
        while self._active and time.monotonic() < deadline:
            await asyncio.sleep(self.tick)
        drained = []
        for job in self._jobs.values():
            if job.terminal:
                continue
            checkpoint = self._checkpoint_job(job)
            job.mark_drained(checkpoint)
            self.stats.jobs_drained += 1
            drained.append(job.row())
        self._drained_summary = {
            "drained_jobs": drained,
            "finished_inflight": self._active == 0,
        }
        self._stopped.set()
        return self._drained_summary

    def _checkpoint_job(self, job: Job) -> str | None:
        """A resumable-sweep checkpoint of the job's finished cells.

        Only sweep-shaped jobs (a ``workloads x modes`` matrix at one
        scale) are checkpointable — the format is exactly
        :class:`~repro.experiments.runner.SweepRunner`'s, so
        ``python -m repro.experiments sweep --checkpoint <path> --resume``
        finishes the job offline.
        """
        if job.workloads is None or job.modes is None:
            return None
        from ..experiments.runner import CHECKPOINT_VERSION
        from ..parallel.cellkey import CACHE_SCHEMA_VERSION
        from ..sim.simulator import resolve_engine

        cells = {}
        for spec, result in zip(job.specs, job.results):
            if result is not None:
                cells[f"{spec.workload}/{spec.mode}"] = result.checkpoint_row()
        state = {
            "version": CHECKPOINT_VERSION,
            "scale": job.scale,
            "sample": "off",
            # Full instance identity (same contract as the sweep runner
            # and the orchestration manifest): a resume under a different
            # engine or cache-schema generation is rejected, not mixed.
            "engine": resolve_engine(job.engine),
            "cache_schema": CACHE_SCHEMA_VERSION,
            "workloads": job.workloads,
            "modes": job.modes,
            "cells": cells,
        }
        os.makedirs(self.drain_dir, exist_ok=True)
        path = os.path.join(self.drain_dir, f"{job.id}.json")
        fd, tmp = tempfile.mkstemp(dir=self.drain_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(state, handle, indent=1, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    # -- transport ------------------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(protocol.encode(protocol.error_response(
                        protocol.E_PROTOCOL, "request line too long")))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self.handle_request(line)
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Loop teardown while parked in readline() — a normal way for
            # a connection to end during server shutdown, not an error.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def handle_request(self, line: bytes | dict) -> dict:
        """One request in (wire line or already-decoded dict), one dict out."""
        try:
            request = line if isinstance(line, dict) else protocol.decode(line)
            return await self._dispatch_request(request)
        except ProtocolError as exc:
            return protocol.error_response(exc.code, str(exc))

    async def _dispatch_request(self, request: dict) -> dict:
        op = request.get("op")
        if op == "submit":
            specs, priority = protocol.parse_submit(request)
            job, rejection = self.admit(specs, priority)
            return rejection or protocol.ok_response(**job.row())
        if op == "sweep":
            workloads, modes, scale, extras, priority = (
                protocol.parse_sweep(request))
            specs = [
                protocol.parse_cell({"workload": w, "mode": m,
                                     "scale": scale, **extras})
                for w in workloads for m in modes
            ]
            job, rejection = self.admit(
                specs, priority,
                workloads=workloads, modes=modes, scale=scale,
                engine=extras.get("engine"))
            return rejection or protocol.ok_response(**job.row())
        if op == "experiment":
            name, kwargs, engine, priority = (
                protocol.parse_experiment(request))
            from dataclasses import replace

            from ..orchestrate import get_experiment

            try:
                experiment = get_experiment(name)(**kwargs)
                plan = experiment.plan()
            except ValueError as exc:
                raise ProtocolError(
                    str(exc), code=protocol.E_BAD_REQUEST) from exc
            specs = [cell.spec for cell in plan]
            if engine is not None:
                specs = [
                    replace(spec, engine=engine) if spec.engine is None
                    else spec
                    for spec in specs
                ]
            job, rejection = self.admit(
                specs, priority, experiment=name, engine=engine,
                scale=kwargs["scale"])
            return rejection or protocol.ok_response(**job.row())
        if op in ("status", "wait"):
            job = self._jobs.get(request.get("job"))
            if job is None:
                return protocol.error_response(
                    protocol.E_UNKNOWN_JOB,
                    f"unknown job {request.get('job')!r}")
            if op == "wait":
                timeout = request.get("timeout")
                try:
                    await asyncio.wait_for(job.event.wait(), timeout)
                except asyncio.TimeoutError:
                    return protocol.error_response(
                        protocol.E_TIMEOUT,
                        f"job {job.id} not terminal after {timeout}s",
                        **job.row())
                return protocol.ok_response(
                    results=job.result_rows(), **job.row())
            return protocol.ok_response(**job.row())
        if op == "health":
            return protocol.ok_response(**self.health())
        if op == "stats":
            return protocol.ok_response(**self.stats_snapshot())
        if op == "drain":
            return protocol.ok_response(**(await self.drain()))
        raise ProtocolError(
            f"unknown op {op!r}; known: {protocol.OPS}",
            code=protocol.E_BAD_REQUEST)

    # -- introspection --------------------------------------------------------

    def health(self) -> dict:
        return {
            "status": "draining" if self._draining else "serving",
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "workers": self.jobs,
            "active_cells": self._active,
            "queued": {name: len(q) for name, q in self._queues.items()},
            "queue_limits": dict(self.queue_limits),
            "jobs": {
                "total": len(self._jobs),
                "terminal": sum(1 for j in self._jobs.values() if j.terminal),
            },
            "protocol": protocol.PROTOCOL_VERSION,
        }

    def stats_snapshot(self) -> dict:
        snapshot = {
            "serve": self.stats.snapshot(),
            "pool": {
                "cells_executed": self.pool_stats.cells_executed,
                "cells_cached": self.pool_stats.cells_cached,
                "retries": self.pool_stats.retries,
                "timeouts": self.pool_stats.timeouts,
                "hard_failures": self.pool_stats.hard_failures,
                "worker_crashes": self.pool_stats.worker_crashes,
                "pool_rebuilds": self.pool_stats.pool_rebuilds,
            },
        }
        if self.cache is not None:
            cache_stats = self.cache.stats
            snapshot["cache"] = {
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "stores": cache_stats.stores,
                "corrupt": cache_stats.corrupt,
                "evictions": cache_stats.evictions,
            }
        return snapshot
