"""Line-oriented JSON protocol for the simulation job server.

One request per line, one response per line, both UTF-8 JSON objects —
trivially scriptable (``nc``, ``socat``, six lines of Python) and
debuggable by eye. The wire format is deliberately narrow: a request
names workloads/modes/scales, never code or config objects, so a client
can only ask for cells the server could also compute from a CLI.

Requests carry ``op`` plus op-specific fields; every response carries
``ok`` (bool). Failure responses carry ``error`` (human-readable),
``code`` (stable machine token), and — for backpressure rejections —
``retry_after`` (seconds the client should wait before resubmitting).

| op         | request fields                                          |
|------------|---------------------------------------------------------|
| submit     | ``cells`` (list of cell dicts), ``priority``?           |
| sweep      | ``workloads``, ``modes``, ``scale``?, ``priority``?     |
| experiment | ``experiment``, ``scale``?, ``workloads``?, ``seeds``?, ``engine``?, ``priority``? |
| status     | ``job``                                                 |
| wait       | ``job``, ``timeout``?                                   |
| health     | —                                                       |
| stats      | —                                                       |
| drain      | —                                                       |

An ``experiment`` request names a registered *matrix* experiment
(``python -m repro.orchestrate list``; docs/ORCHESTRATION.md) — the
server lowers its Target × Instance plan to cells and admits them as one
job, exactly as if the same cells had been submitted individually.

A *cell dict* is ``{"workload": ..., "mode": ..., "scale"?, "variant"?,
"cycle_budget"?, "engine"?, "critical_pcs"?}`` — exactly the picklable
subset of :class:`~repro.parallel.cellkey.CellSpec` that travels by
value. Alternatively ``{"corun": "mcf@crisp+lbm", "scale"?,
"cycle_budget"?, "engine"?, "llc_xcore"?}`` submits one N-core co-run
cell (docs/MULTICORE.md); the mix string replaces ``workload``/``mode``
and every member workload/mode is validated the same way. See
docs/SERVE.md for the full contract and failure matrix.
"""

from __future__ import annotations

import json

from ..parallel.cellkey import CellSpec

PROTOCOL_VERSION = 1

#: Hard bound on one request line; longer lines are a protocol error
#: (and the asyncio stream reader enforces it before parsing).
MAX_LINE_BYTES = 1 << 20

#: Priority classes, highest first. Interactive single-cell jobs overtake
#: queued bulk sweeps at dispatch time.
PRIORITIES = ("interactive", "bulk")

OPS = ("submit", "sweep", "experiment", "status", "wait", "health", "stats",
       "drain")

#: Stable machine-readable error codes.
E_PROTOCOL = "protocol"       # unparsable/oversized line, bad field types
E_BAD_REQUEST = "bad-request"  # well-formed but invalid (unknown op, ...)
E_BUSY = "busy"               # admission queue full; see retry_after
E_DRAINING = "draining"       # server is draining; not admitting
E_UNKNOWN_JOB = "unknown-job"
E_TIMEOUT = "timeout"         # wait timed out (job still running)


class ProtocolError(ValueError):
    """A request that violates the wire contract."""

    def __init__(self, message: str, *, code: str = E_PROTOCOL):
        super().__init__(message)
        self.code = code


def encode(message: dict) -> bytes:
    """One wire line (compact JSON + newline) for ``message``."""
    return json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"


def decode(line: bytes | str) -> dict:
    """Parse one wire line into a request/response dict."""
    if isinstance(line, str):
        line = line.encode("utf-8")
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparsable request line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("a request must be a JSON object")
    return message


def ok_response(**fields) -> dict:
    return {"ok": True, **fields}


def error_response(code: str, error: str, **fields) -> dict:
    return {"ok": False, "code": code, "error": error, **fields}


# -- request validation --------------------------------------------------------


def _require(req: dict, field: str, types, *, code: str = E_BAD_REQUEST):
    value = req.get(field)
    if not isinstance(value, types) or (isinstance(value, str) and not value):
        raise ProtocolError(
            f"field {field!r} is required and must be {types}", code=code
        )
    return value


def parse_priority(req: dict, default: str) -> str:
    priority = req.get("priority", default)
    if priority not in PRIORITIES:
        raise ProtocolError(
            f"priority must be one of {PRIORITIES}, not {priority!r}",
            code=E_BAD_REQUEST,
        )
    return priority


def _validate_workload(workload: str) -> None:
    """Raise unless ``workload`` names a registered or generated workload."""
    from ..workloads import REGISTRY  # local import: registration is heavy

    if workload.startswith("gen:"):
        # Generated workloads (docs/WORKGEN.md) are addressed by canonical
        # spec name, not the registry; validate the spelling here so a bad
        # name is a protocol error, not a worker crash.
        from ..workgen.spec import WorkloadSpecError, parse_name

        try:
            parse_name(workload)
        except WorkloadSpecError as exc:
            raise ProtocolError(str(exc), code=E_BAD_REQUEST) from None
    elif workload not in REGISTRY.names():
        raise ProtocolError(
            f"unknown workload {workload!r}; known: {REGISTRY.names()}",
            code=E_BAD_REQUEST,
        )


def _validate_mode(mode: str) -> None:
    from ..sim.simulator import MODES

    if mode not in MODES:
        raise ProtocolError(
            f"unknown mode {mode!r}; known: {MODES}", code=E_BAD_REQUEST)


def _parse_corun_cell(cell: dict) -> CellSpec:
    """A validated co-run :class:`CellSpec` from a ``corun`` mix dict."""
    unknown = set(cell) - {"corun", "scale", "cycle_budget", "engine",
                           "llc_xcore"}
    if unknown:
        raise ProtocolError(f"unknown corun cell fields: {sorted(unknown)}")
    from ..multicore import corun_cell, parse_mix

    mix = _require(cell, "corun", str)
    llc_xcore = cell.get("llc_xcore", False)
    if not isinstance(llc_xcore, bool):
        raise ProtocolError("cell llc_xcore must be a boolean")
    try:
        spec = parse_mix(mix, llc_xcore=llc_xcore)
    except ValueError as exc:
        raise ProtocolError(str(exc), code=E_BAD_REQUEST) from None
    for task in spec.cores:
        _validate_workload(task.workload)
        _validate_mode(task.mode)
    scale = cell.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or scale <= 0:
        raise ProtocolError("cell scale must be a positive number")
    engine = cell.get("engine")
    if engine not in (None, "obj", "array"):
        raise ProtocolError("cell engine must be 'obj' or 'array'")
    cycle_budget = cell.get("cycle_budget")
    if cycle_budget is not None and (
        not isinstance(cycle_budget, int) or cycle_budget < 1
    ):
        raise ProtocolError("cell cycle_budget must be a positive integer")
    return corun_cell(
        spec, scale=float(scale), cycle_budget=cycle_budget, engine=engine,
    )


def parse_cell(cell: dict) -> CellSpec:
    """A validated :class:`CellSpec` from one wire cell dict."""
    if not isinstance(cell, dict):
        raise ProtocolError("each cell must be a JSON object")
    if "corun" in cell:
        return _parse_corun_cell(cell)
    unknown = set(cell) - {
        "workload", "mode", "scale", "variant", "cycle_budget", "engine",
        "critical_pcs",
    }
    if unknown:
        raise ProtocolError(f"unknown cell fields: {sorted(unknown)}")
    workload = _require(cell, "workload", str)
    _validate_workload(workload)
    mode = _require(cell, "mode", str)
    _validate_mode(mode)
    scale = cell.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or scale <= 0:
        raise ProtocolError("cell scale must be a positive number")
    engine = cell.get("engine")
    if engine not in (None, "obj", "array"):
        raise ProtocolError("cell engine must be 'obj' or 'array'")
    cycle_budget = cell.get("cycle_budget")
    if cycle_budget is not None and (
        not isinstance(cycle_budget, int) or cycle_budget < 1
    ):
        raise ProtocolError("cell cycle_budget must be a positive integer")
    critical_pcs = cell.get("critical_pcs")
    if critical_pcs is not None:
        if not isinstance(critical_pcs, list) or not all(
            isinstance(pc, int) for pc in critical_pcs
        ):
            raise ProtocolError("cell critical_pcs must be a list of ints")
        critical_pcs = tuple(critical_pcs)
    return CellSpec(
        workload=workload,
        mode=mode,
        scale=float(scale),
        variant=cell.get("variant", "ref"),
        critical_pcs=critical_pcs,
        cycle_budget=cycle_budget,
        engine=engine,
    )


def parse_submit(req: dict) -> tuple[list[CellSpec], str]:
    """Validated ``(specs, priority)`` of a ``submit`` request."""
    cells = _require(req, "cells", list)
    if not cells:
        raise ProtocolError("a submit request needs at least one cell")
    specs = [parse_cell(cell) for cell in cells]
    default = "interactive" if len(specs) == 1 else "bulk"
    return specs, parse_priority(req, default)


def parse_sweep(req: dict) -> tuple[list[str], list[str], float, dict, str]:
    """Validated ``(workloads, modes, scale, extras, priority)`` of a sweep."""
    workloads = _require(req, "workloads", list)
    modes = _require(req, "modes", list)
    if not workloads or not all(isinstance(w, str) and w for w in workloads):
        raise ProtocolError("workloads must be a non-empty list of names")
    if not modes or not all(isinstance(m, str) and m for m in modes):
        raise ProtocolError("modes must be a non-empty list of names")
    scale = req.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or scale <= 0:
        raise ProtocolError("scale must be a positive number")
    extras = {}
    for field in ("cycle_budget", "engine"):
        if req.get(field) is not None:
            extras[field] = req[field]
    return workloads, modes, float(scale), extras, parse_priority(req, "bulk")


def parse_experiment(req: dict) -> tuple[str, dict, str | None, str]:
    """Validated ``(name, kwargs, engine, priority)`` of an experiment job.

    ``kwargs`` are the experiment's constructor arguments (scale,
    workloads, seeds) — the same JSON shape a run manifest records as
    ``args``. The experiment name is checked against the orchestration
    registry, and only matrix experiments are accepted (legacy wrappers
    do not lower to cells the server can schedule).
    """
    name = _require(req, "experiment", str)
    from ..orchestrate import registry  # local import: registration is heavy

    reg = registry()
    if name not in reg:
        raise ProtocolError(
            f"unknown experiment {name!r}; known: {sorted(reg)}",
            code=E_BAD_REQUEST,
        )
    if reg[name].kind != "matrix":
        raise ProtocolError(
            f"experiment {name!r} is {reg[name].kind!r}, not 'matrix'; only "
            "matrix experiments lower to schedulable cells — run it via "
            "python -m repro.orchestrate instead",
            code=E_BAD_REQUEST,
        )
    kwargs: dict = {}
    scale = req.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or scale <= 0:
        raise ProtocolError("scale must be a positive number")
    kwargs["scale"] = float(scale)
    workloads = req.get("workloads")
    if workloads is not None:
        if not isinstance(workloads, list) or not all(
            isinstance(w, str) and w for w in workloads
        ):
            raise ProtocolError("workloads must be a list of names")
        kwargs["workloads"] = workloads
    seeds = req.get("seeds", 1)
    if not isinstance(seeds, int) or seeds < 1:
        raise ProtocolError("seeds must be a positive integer")
    kwargs["seeds"] = seeds
    engine = req.get("engine")
    if engine not in (None, "obj", "array"):
        raise ProtocolError("engine must be 'obj' or 'array'")
    return name, kwargs, engine, parse_priority(req, "bulk")
