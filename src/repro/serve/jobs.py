"""Job bookkeeping for the simulation server.

A :class:`Job` is one client request (``submit`` or ``sweep``) fanned out
into simulation cells. Cells resolve independently — possibly shared with
other jobs through the server's duplicate-request coalescing — and the
job reaches a terminal state exactly once, when its last cell resolves
(``done``/``failed``) or the server drains it (``drained``).

State machine::

    queued -> running -> done      (every cell ok)
                      \\-> failed   (>= 1 cell failed; all terminal)
    queued|running -> drained      (graceful drain checkpointed it)

``asyncio.Event`` is the only concurrency primitive: everything here runs
on the server's event loop, so plain attribute updates are race-free.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field

from ..parallel.cellkey import CellSpec
from ..parallel.executor import CellResult

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_DRAINED = "drained"

TERMINAL_STATES = frozenset({JOB_DONE, JOB_FAILED, JOB_DRAINED})

_ids = itertools.count(1)


@dataclass
class Job:
    """One admitted client request and its per-cell progress."""

    id: str
    priority: str
    specs: list[CellSpec]
    keys: list[str]
    #: Sweep-shaped jobs carry their matrix for drain checkpointing.
    workloads: list[str] | None = None
    modes: list[str] | None = None
    scale: float = 1.0
    #: Requested engine (None = server default); recorded in drain
    #: checkpoints so a resume cannot silently mix instances.
    engine: str | None = None
    #: Orchestration experiment name, for jobs admitted via the
    #: ``experiment`` op (docs/ORCHESTRATION.md).
    experiment: str | None = None
    created: float = field(default_factory=time.monotonic)
    state: str = JOB_QUEUED
    results: list = field(default_factory=list)
    #: Path of the drain checkpoint, when the job was drained mid-flight.
    checkpoint: str | None = None
    event: asyncio.Event = field(default_factory=asyncio.Event)

    def __post_init__(self):
        self.results = [None] * len(self.specs)

    @classmethod
    def create(cls, priority: str, specs: list[CellSpec], keys: list[str],
               **kw) -> "Job":
        return cls(id=f"job-{next(_ids)}", priority=priority,
                   specs=list(specs), keys=list(keys), **kw)

    # -- progress -------------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def remaining(self) -> int:
        return sum(1 for r in self.results if r is None)

    def cell_done(self, index: int, result: CellResult) -> bool:
        """Record one resolved cell; True when the job *became* terminal."""
        if self.terminal:
            return False  # drained while the cell was still in flight
        assert self.results[index] is None, "cell resolved twice"
        self.results[index] = result
        if self.state == JOB_QUEUED:
            self.state = JOB_RUNNING
        if self.remaining:
            return False
        failed = any(not r.ok for r in self.results)
        self.state = JOB_FAILED if failed else JOB_DONE
        self.event.set()
        return True

    def mark_drained(self, checkpoint: str | None) -> None:
        """Terminal ``drained`` state; waiters unblock with partial rows."""
        if self.terminal:
            return
        self.state = JOB_DRAINED
        self.checkpoint = checkpoint
        self.event.set()

    # -- wire views -----------------------------------------------------------

    def row(self) -> dict:
        """The compact status row (``status`` op)."""
        row = {
            "job": self.id,
            "state": self.state,
            "priority": self.priority,
            "cells": len(self.specs),
            "remaining": self.remaining,
        }
        if self.experiment:
            row["experiment"] = self.experiment
        if self.checkpoint:
            row["checkpoint"] = self.checkpoint
        return row

    def result_rows(self) -> list[dict]:
        """Per-cell rows (``wait`` op); unresolved cells are ``pending``."""
        rows = []
        for spec, key, result in zip(self.specs, self.keys, self.results):
            if result is None:
                rows.append({
                    "workload": spec.workload, "mode": spec.mode,
                    "key": key, "status": "pending",
                })
                continue
            row = result.checkpoint_row()
            row.update(workload=spec.workload, mode=spec.mode)
            rows.append(row)
        return rows
