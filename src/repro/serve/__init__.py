"""Simulation-as-a-service: the fault-tolerant job server (docs/SERVE.md).

``python -m repro.serve`` runs the server; ``python -m repro.serve.client``
(or :class:`ServeClient`) talks to it over a line-oriented JSON protocol.
The server multiplexes jobs onto the ``repro.parallel`` process pool and
result cache with supervision (crash/hang recovery), bounded admission
queues with backpressure, duplicate-request coalescing, shared
retry/backoff policy, and graceful SIGTERM drain with resumable
checkpoints.
"""

from .client import ServeClient, ServeError
from .jobs import (
    JOB_DONE,
    JOB_DRAINED,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    TERMINAL_STATES,
    Job,
)
from .protocol import PRIORITIES, PROTOCOL_VERSION, ProtocolError
from .server import SimServer
from .telemetry import ServeStats

__all__ = [
    "JOB_DONE",
    "JOB_DRAINED",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "Job",
    "PRIORITIES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "ServeStats",
    "SimServer",
    "TERMINAL_STATES",
]
