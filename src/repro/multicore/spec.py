"""Declarative co-run specifications.

A :class:`CoRunSpec` describes one N-core co-run: which workload runs on
each core, in which mode (with which CRISP annotation / private
prefetchers), plus the shared-memory knobs (LLC size, shared-MSHR pool
depth, the cross-core LLC prefetcher). It is a frozen value object — the
parallel layer puts its canonical payload into the cell key, so *every*
field here is part of the co-run's identity: mix membership, core order,
and per-core mode all produce distinct cells.

The textual mix syntax understood by :func:`parse_mix` is
``workload[@mode]`` entries joined by ``+``::

    mcf@crisp+lbm                      # 2-core: mcf in crisp mode, lbm in ooo
    omnetpp+gen:pcd1,mlp8,ent0.10,ws4096,sl2,lf0.60#0@ooo   # generated antagonist

Generated-workload names (``gen:...``) are safe in mixes: their canonical
grammar (:mod:`repro.workgen.spec`) never contains ``+`` or ``@``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..core.fdo import CrispConfig
from ..memory.shared import DEFAULT_LLC_MSHRS_PER_CORE


@dataclass(frozen=True)
class CoreTask:
    """One core's assignment inside a co-run."""

    workload: str
    mode: str = "ooo"
    variant: str = "ref"
    #: Explicit CRISP annotation; ``None`` in ``"crisp"`` mode means derive
    #: via the FDO flow on the train input (same contract as CellSpec).
    critical_pcs: tuple[int, ...] | None = None
    #: FDO-flow knobs for the derivation (``None`` = defaults).
    crisp_config: CrispConfig | None = None
    #: Private (L1-side) prefetchers for this core; ``None`` keeps the
    #: hierarchy config's default set, ``()`` disables them.
    prefetchers: tuple[str, ...] | None = None

    @property
    def label(self) -> str:
        return f"{self.workload}@{self.mode}"

    def to_payload(self) -> dict:
        """Canonical JSON component for the cell key."""
        payload: dict = {
            "workload": self.workload,
            "mode": self.mode,
            "variant": self.variant,
        }
        if self.critical_pcs is not None:
            payload["critical_pcs"] = sorted(self.critical_pcs)
        elif self.mode == "crisp":
            crisp = self.crisp_config or CrispConfig()
            payload["crisp_config"] = dataclasses.asdict(crisp)
        if self.prefetchers is not None:
            payload["prefetchers"] = list(self.prefetchers)
        return payload


@dataclass(frozen=True)
class CoRunSpec:
    """One N-core co-run: per-core tasks plus shared-memory knobs."""

    cores: tuple[CoreTask, ...]
    #: Enable the Pickle-style cross-core LLC prefetcher.
    llc_xcore: bool = False
    #: Shared-LLC MSHR slots contributed per core (pool = per_core x N).
    llc_mshrs_per_core: int = DEFAULT_LLC_MSHRS_PER_CORE
    #: Total shared LLC bytes; ``None`` keeps the base config's ``llc_size``
    #: *unscaled* — N cores contend for one solo-sized LLC, the worst case.
    shared_llc_size: int | None = None

    def __post_init__(self):
        if not self.cores:
            raise ValueError("CoRunSpec needs at least one core")

    @property
    def ncores(self) -> int:
        return len(self.cores)

    @property
    def label(self) -> str:
        """Human-readable mix label, e.g. ``mcf@crisp+lbm@ooo``."""
        return "+".join(task.label for task in self.cores)

    def has_generated(self) -> bool:
        return any(t.workload.startswith("gen:") for t in self.cores)

    def to_payload(self) -> dict:
        """Canonical JSON component hashed into the cell key."""
        return {
            "cores": [task.to_payload() for task in self.cores],
            "llc_xcore": self.llc_xcore,
            "llc_mshrs_per_core": self.llc_mshrs_per_core,
            "shared_llc_size": self.shared_llc_size,
        }


def parse_mix(mix: str, **knobs) -> CoRunSpec:
    """Parse ``workload[@mode]+workload[@mode]+...`` into a CoRunSpec.

    Extra keyword arguments (``llc_xcore``, ``llc_mshrs_per_core``,
    ``shared_llc_size``) pass through to the spec.
    """
    tasks = []
    for entry in mix.split("+"):
        entry = entry.strip()
        if not entry:
            raise ValueError(f"empty core entry in mix {mix!r}")
        if "@" in entry:
            workload, _, mode = entry.rpartition("@")
        else:
            workload, mode = entry, "ooo"
        tasks.append(CoreTask(workload=workload, mode=mode))
    return CoRunSpec(cores=tuple(tasks), **knobs)
