"""The N-core lockstep co-run engine.

Every core is a full single-core pipeline — object or array engine,
unchanged — running its own workload with its own private L1s, MSHRs, and
prefetchers. What makes it a *co-run* is (a) the shared memory below the
private levels (:class:`~repro.memory.shared.SharedMemory`: one LLC, one
DRAM channel, one LLC-MSHR pool, optionally the cross-core prefetcher) and
(b) cycle-lockstep stepping.

Lockstep works through the engines' generator form: ``Pipeline.cycles()``
yields its local clock once per main-loop iteration, *after* the iteration
at the previous clock value completed and time advanced — so the yielded
value is the cycle the next resumption will simulate. The driver keeps a
min-heap of ``(next_cycle, core)`` and always resumes the earliest core
(ties broken by core id), which means every access to the shared memory
happens in globally nondecreasing ``(cycle, core)`` order: the co-run is a
pure function of its spec, independent of host scheduling — the property
behind serial/pooled and obj/array digest equality.

Idle fast-forward inside a core (the engines skip ahead to the next event
when nothing can move) is safe under this ordering: a skipping core makes
no memory accesses in the skipped range, and in-flight completions are
fixed at issue time, so no shared-state interaction is missed.

A 1-core spec takes the solo path — a plain private
:class:`~repro.memory.hierarchy.MemoryHierarchy` through the same drain —
making N=1 digest-identical to :func:`repro.sim.simulator.simulate` *by
construction* (acceptance criterion, asserted in tests/multicore/).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace

from ..sim.simulator import pipeline_class, resolve_mode
from ..memory.shared import SharedMemory, SharedMemoryHierarchy
from ..uarch.config import CoreConfig
from ..uarch.stats import SimStats
from .spec import CoRunSpec
from .stats import MulticoreStats


@dataclass
class CoRunResult:
    """Outcome of one co-run."""

    spec: CoRunSpec
    #: Merged view: per-core counters summed, ``cycles`` = global lockstep
    #: cycles, so ``stats.ipc`` is aggregate mix throughput. For N=1 this
    #: *is* the solo SimStats object, untouched.
    stats: SimStats
    #: Per-core attributed stats (LLC/DRAM fields reflect only that core's
    #: traffic, via the shared-memory views).
    per_core: list[SimStats]
    multicore: MulticoreStats
    #: Annotation each core actually ran with (empty for non-crisp cores).
    critical_pcs: list[tuple[int, ...]]

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    def core_ipc(self, core: int) -> float:
        """Core's own IPC on its own clock (comparable to its solo run)."""
        part = self.per_core[core]
        return part.retired / part.cycles if part.cycles else 0.0


def _core_annotation(task, *, config, scale):
    """Resolve one core's CRISP annotation (explicit, or FDO-derived)."""
    if task.mode != "crisp":
        return frozenset()
    if task.critical_pcs is not None:
        return frozenset(task.critical_pcs)
    from ..core.fdo import run_crisp_flow

    flow = run_crisp_flow(
        task.workload, task.crisp_config, core_config=config, scale=scale
    )
    return flow.critical_pcs


def run_corun(
    spec: CoRunSpec,
    *,
    scale: float = 1.0,
    config: CoreConfig | None = None,
    engine: str | None = None,
    invariants: str | None = None,
    cycle_budget: int | None = None,
    crash_dir: str | None = None,
) -> CoRunResult:
    """Run one co-run to completion and return its result.

    ``config`` is the per-core configuration (every core gets the same
    base; per-core private prefetchers come from the task). Resilience
    knobs mirror :func:`~repro.sim.simulator.simulate`, applied per core.
    """
    from ..workloads import get_workload

    base = config if config is not None else CoreConfig.skylake()
    ncores = spec.ncores
    hcfg = base.hierarchy

    shared = None
    if ncores > 1:
        shared = SharedMemory(
            ncores,
            llc_size=spec.shared_llc_size or hcfg.llc_size,
            llc_assoc=hcfg.llc_assoc,
            line_bytes=hcfg.line_bytes,
            dram=hcfg.dram,
            llc_mshrs_per_core=spec.llc_mshrs_per_core,
            llc_latency=hcfg.llc_latency,
            xcore=spec.llc_xcore,
        )

    pipes = []
    annotations: list[tuple[int, ...]] = []
    for idx, task in enumerate(spec.cores):
        critical = _core_annotation(task, config=base, scale=scale)
        core_config, used, ibda = resolve_mode(task.mode, base, critical)
        if task.prefetchers is not None:
            core_config = replace(
                core_config,
                hierarchy=replace(core_config.hierarchy,
                                  prefetchers=tuple(task.prefetchers)),
            )
        annotations.append(tuple(sorted(used)))
        hierarchy = None
        if shared is not None:
            hierarchy = SharedMemoryHierarchy(core_config.hierarchy, shared, idx)
        context = {"workload": task.workload, "mode": task.mode,
                   "core": idx, "mix": spec.label}
        watchdog = _make_watchdog(cycle_budget, crash_dir, context)
        workload = get_workload(task.workload, variant=task.variant, scale=scale)
        pipes.append(pipeline_class(engine)(
            workload.trace(),
            core_config,
            critical_pcs=used,
            ibda=ibda,
            hierarchy=hierarchy,
            invariants=invariants,
            watchdog=watchdog,
            run_context=context,
        ))

    per_core = _drive_lockstep(pipes, shared)
    return _assemble(spec, pipes, per_core, shared, annotations)


def _make_watchdog(cycle_budget, crash_dir, context):
    if cycle_budget is not None:
        from ..resilience.watchdog import CycleBudgetWatchdog

        return CycleBudgetWatchdog(cycle_budget, crash_dir=crash_dir,
                                   context=context)
    if crash_dir is not None:
        from ..resilience.watchdog import Watchdog

        return Watchdog(crash_dir=crash_dir, context=context)
    return None


def _drive_lockstep(pipes, shared) -> list[SimStats]:
    """Resume cores in global (cycle, core) order until all complete."""
    gens = [pipe.cycles() for pipe in pipes]
    results: list[SimStats | None] = [None] * len(pipes)
    # Every generator's first resumption simulates from its cycle 0.
    heap = [(0, idx) for idx in range(len(pipes))]
    heapq.heapify(heap)
    while heap:
        now, idx = heapq.heappop(heap)
        if shared is not None:
            shared.advance(now)
        try:
            nxt = next(gens[idx])
        except StopIteration as stop:
            results[idx] = stop.value
            continue
        heapq.heappush(heap, (nxt, idx))
    return results  # type: ignore[return-value]


def _assemble(spec, pipes, per_core, shared, annotations) -> CoRunResult:
    ncores = len(per_core)
    global_cycles = max(part.cycles for part in per_core)
    if ncores == 1:
        # The solo path: hand the single SimStats through untouched so the
        # digest matches simulate() exactly (no merge-float round trips).
        merged = per_core[0]
    else:
        merged = SimStats.merge(per_core)
        merged.cycles = global_cycles

    mc = MulticoreStats(
        ncores=ncores,
        cycles=global_cycles,
        retired=sum(part.retired for part in per_core),
        core_cycles=[part.cycles for part in per_core],
        core_retired=[part.retired for part in per_core],
    )
    if shared is not None:
        llc, dram, pool = shared.llc, shared.dram, shared.pool
        mc.llc_accesses = llc.stats.accesses
        mc.llc_hits = llc.stats.hits
        mc.llc_misses = llc.stats.misses
        mc.llc_xcore_evictions = shared.stats.xcore_evictions
        mc.dram_requests = dram.stats.requests
        mc.dram_bus_stall_cycles = dram.stats.bus_stall_cycles
        mc.pool_allocations = sum(pool.allocations)
        mc.pool_full_stalls = sum(pool.full_stalls)
        mc.pool_peak_occupancy = pool.peak
        if shared.xcore is not None:
            mc.xpf_prefetches = shared.xcore.stats.prefetches
            mc.xpf_fills = shared.xcore.stats.fills
            mc.xpf_useful = shared.xcore.stats.useful
        mc.core_llc_accesses = [v.stats.accesses for v in shared.llc_views]
        mc.core_llc_hits = [v.stats.hits for v in shared.llc_views]
        mc.core_llc_misses = [v.stats.misses for v in shared.llc_views]
        mc.core_dram_requests = [v.stats.requests for v in shared.dram_views]
        mc.core_llc_occupancy = shared.occupancy_by_core()
        mc.core_pool_full_stalls = list(pool.full_stalls)
    else:
        hier = pipes[0].hierarchy
        mc.llc_accesses = hier.llc.stats.accesses
        mc.llc_hits = hier.llc.stats.hits
        mc.llc_misses = hier.llc.stats.misses
        mc.dram_requests = hier.dram.stats.requests
        mc.dram_bus_stall_cycles = hier.dram.stats.bus_stall_cycles
        mc.core_llc_accesses = [hier.llc.stats.accesses]
        mc.core_llc_hits = [hier.llc.stats.hits]
        mc.core_llc_misses = [hier.llc.stats.misses]
        mc.core_dram_requests = [hier.dram.stats.requests]
        mc.core_llc_occupancy = [hier.llc.occupancy()]
        mc.core_pool_full_stalls = [0]

    return CoRunResult(
        spec=spec,
        stats=merged,
        per_core=per_core,
        multicore=mc,
        critical_pcs=annotations,
    )
