"""N-core co-run simulation with shared LLC + DRAM contention.

The subsystem (docs/MULTICORE.md):

* :mod:`repro.multicore.spec` — declarative :class:`CoRunSpec` (mix of
  workload×mode entries, per-core CRISP annotations, shared-memory knobs)
  and the ``workload@mode+workload@mode`` mix grammar,
* :mod:`repro.multicore.engine` — the cycle-lockstep driver over the
  engines' generator form, sharing one LLC/DRAM/MSHR-pool
  (:mod:`repro.memory.shared`) below per-core private hierarchies,
* :mod:`repro.multicore.stats` — the ``multicore.*`` metrics group,
* :mod:`repro.multicore.cells` — one co-run = one cell on the parallel
  layer (pool, cache, retries, orchestrate run dirs apply unchanged),
* :mod:`repro.multicore.smt` — the two-thread SMT model's cell lowering.

CLI: ``python -m repro.multicore run --mix mcf@crisp+lbm --scale 0.3``.
"""

from __future__ import annotations

from .cells import CORUN_MODE, corun_cell, corun_extra, run_corun_cell
from .engine import CoRunResult, run_corun
from .smt import SMT_MODE, SmtCellSpec, run_smt_cell, smt_cell
from .spec import CoreTask, CoRunSpec, parse_mix
from .stats import MulticoreStats

__all__ = [
    "CORUN_MODE",
    "CoRunResult",
    "CoRunSpec",
    "CoreTask",
    "MulticoreStats",
    "SMT_MODE",
    "SmtCellSpec",
    "corun_cell",
    "corun_extra",
    "parse_mix",
    "run_corun",
    "run_corun_cell",
    "run_smt_cell",
    "smt_cell",
]
