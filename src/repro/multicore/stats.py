"""Co-run statistics: the ``multicore.*`` metrics group.

:class:`MulticoreStats` carries the shared-resource counters a co-run
produces *on top of* the per-core :class:`~repro.uarch.stats.SimStats`
(which are attributed through the per-core LLC/DRAM views, see
:mod:`repro.memory.shared`): shared-LLC totals, cross-core evictions,
DRAM channel totals, LLC-MSHR-pool pressure, and cross-core prefetcher
activity — plus per-core breakdown lists for the report tables
(occupancy/hit/bandwidth shares).

Like SimStats, it round-trips exactly through JSON (``to_dict`` /
``from_dict``) so co-run cells cache cleanly, and ``register_into``
publishes the aggregate counters under ``multicore.*`` — the contract
documented in docs/METRICS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class MulticoreStats:
    """Shared-resource counters for one N-core co-run."""

    ncores: int = 0
    #: Global lockstep cycles (the slowest core's clock at completion).
    cycles: int = 0
    #: Instructions retired across all cores.
    retired: int = 0
    # Shared LLC (mix-wide totals; per-core splits in the lists below).
    llc_accesses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    #: Shared-LLC evictions where the victim line belonged to a different
    #: core than the filler — the capacity-interference signal.
    llc_xcore_evictions: int = 0
    # Shared DRAM channel.
    dram_requests: int = 0
    dram_bus_stall_cycles: int = 0
    # Shared LLC MSHR pool.
    pool_allocations: int = 0
    pool_full_stalls: int = 0
    pool_peak_occupancy: int = 0
    # Cross-core LLC prefetcher (zero when llc_xcore is off).
    xpf_prefetches: int = 0
    xpf_fills: int = 0
    xpf_useful: int = 0
    # Per-core breakdowns, indexed by core id.
    core_cycles: list[int] = field(default_factory=list)
    core_retired: list[int] = field(default_factory=list)
    core_llc_accesses: list[int] = field(default_factory=list)
    core_llc_hits: list[int] = field(default_factory=list)
    core_llc_misses: list[int] = field(default_factory=list)
    core_dram_requests: list[int] = field(default_factory=list)
    #: Shared-LLC lines each core held when the run ended.
    core_llc_occupancy: list[int] = field(default_factory=list)
    core_pool_full_stalls: list[int] = field(default_factory=list)

    # -- derived shares --------------------------------------------------------

    def core_ipc(self, core: int) -> float:
        """Per-core IPC against the *global* lockstep clock."""
        return self.core_retired[core] / self.cycles if self.cycles else 0.0

    def llc_hit_share(self, core: int) -> float:
        """Fraction of all shared-LLC hits that went to ``core``."""
        return self.core_llc_hits[core] / self.llc_hits if self.llc_hits else 0.0

    def dram_share(self, core: int) -> float:
        """Fraction of DRAM channel requests issued by ``core``."""
        return (
            self.core_dram_requests[core] / self.dram_requests
            if self.dram_requests else 0.0
        )

    def occupancy_share(self, core: int) -> float:
        """Fraction of resident shared-LLC lines held by ``core`` at the end."""
        total = sum(self.core_llc_occupancy)
        return self.core_llc_occupancy[core] / total if total else 0.0

    # -- serialization (exact JSON round trip, like SimStats) ------------------

    def to_dict(self) -> dict:
        return {
            f.name: (list(v) if isinstance(v := getattr(self, f.name), list) else v)
            for f in fields(self)
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MulticoreStats":
        return cls(**data)

    # -- telemetry -------------------------------------------------------------

    def register_into(self, registry) -> None:
        """Register the aggregate counters (docs/METRICS.md contract).

        Per-core lists stay out of the registry — they are report-table
        material, not fleet-aggregatable counters.
        """
        spec = (
            # name, field, unit, owner, description
            ("multicore.cycles", "cycles", "cycles", "lockstep driver",
             "global co-run cycles (slowest core's clock at completion)"),
            ("multicore.retired", "retired", "insts", "lockstep driver",
             "instructions retired across all cores"),
            ("multicore.llc.accesses", "llc_accesses", "events", "shared LLC",
             "demand lookups at the shared LLC (all cores)"),
            ("multicore.llc.hits", "llc_hits", "events", "shared LLC",
             "shared-LLC demand hits (all cores)"),
            ("multicore.llc.misses", "llc_misses", "events", "shared LLC",
             "shared-LLC demand misses (all cores)"),
            ("multicore.llc.xcore_evictions", "llc_xcore_evictions", "events",
             "shared LLC",
             "fills that evicted another core's line (capacity interference)"),
            ("multicore.dram.requests", "dram_requests", "events", "shared DRAM",
             "line reads on the shared channel (all cores)"),
            ("multicore.dram.bus_stall_cycles", "dram_bus_stall_cycles", "cycles",
             "shared DRAM",
             "transfer cycles lost to cross-core data-bus contention"),
            ("multicore.pool.allocations", "pool_allocations", "events",
             "LLC MSHR pool",
             "shared-MSHR slots allocated (demand + prefetch + inst fetches)"),
            ("multicore.pool.full_stalls", "pool_full_stalls", "events",
             "LLC MSHR pool",
             "fetches delayed because the shared MSHR pool was full"),
            ("multicore.pool.peak_occupancy", "pool_peak_occupancy", "entries",
             "LLC MSHR pool",
             "high-water mark of outstanding shared-MSHR entries"),
            ("multicore.xpf.prefetches", "xpf_prefetches", "events",
             "xcore prefetcher",
             "cross-core LLC prefetches issued (llc_xcore)"),
            ("multicore.xpf.fills", "xpf_fills", "events", "xcore prefetcher",
             "cross-core prefetch fills applied into the shared LLC"),
            ("multicore.xpf.useful", "xpf_useful", "events", "xcore prefetcher",
             "demand misses caught by an in-flight cross-core prefetch"),
        )
        for name, field_name, unit, owner, desc in spec:
            registry.counter(
                name,
                unit=unit,
                desc=desc,
                owner=owner,
                figure="",
                collect=lambda f=field_name: getattr(self, f),
            )
