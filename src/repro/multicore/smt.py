"""SMT cells: lowering two-thread SMT runs onto the parallel layer.

The two-thread SMT model (:mod:`repro.uarch.smt`) predates the cell
machinery; :class:`SmtCellSpec` gives its runs a canonical, cacheable
identity the same way :class:`~repro.multicore.spec.CoRunSpec` does for
N-core co-runs: thread workloads, priority policy, explicit per-thread
annotations, and the fairness guard are all part of the cell key.

The cell's top-level ``stats`` is a synthesized SimStats (``cycles`` = the
SMT run's cycles, ``retired`` = both threads' sum) so ``ipc`` and the
generic report machinery work; per-thread completion times travel in
``extra["smt"]``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.cellkey import CellSpec
from ..uarch.stats import SimStats

#: Display mode of an SMT cell (branched on before ``resolve_mode``).
SMT_MODE = "smt"


@dataclass(frozen=True)
class SmtCellSpec:
    """One two-thread SMT run: thread assignments + issue policy."""

    #: Thread 0 (the victim/latency thread) and thread 1 (the co-runner).
    workloads: tuple[str, str]
    variants: tuple[str, str] = ("ref", "ref")
    #: ``"none"`` (age order) or ``"thread0"`` (SLO prioritisation).
    priority: str = "none"
    #: Explicit per-thread annotations; ``None`` = no tags. Always explicit
    #: — SMT cells never derive annotations in the worker (the studies pin
    #: them at plan time, like the perfect-BP ablation).
    critical_pcs: tuple[tuple[int, ...], tuple[int, ...]] | None = None
    #: Issue slots per cycle reserved for the oldest ready instructions
    #: regardless of criticality (the DoS mitigation).
    fair_slots: int = 0

    @property
    def label(self) -> str:
        return f"{self.workloads[0]}+{self.workloads[1]}"

    def to_payload(self) -> dict:
        """Canonical JSON component hashed into the cell key."""
        payload: dict = {
            "workloads": list(self.workloads),
            "variants": list(self.variants),
            "priority": self.priority,
            "fair_slots": self.fair_slots,
        }
        if self.critical_pcs is not None:
            payload["critical_pcs"] = [sorted(pcs) for pcs in self.critical_pcs]
        return payload


def smt_cell(
    smt: SmtCellSpec,
    *,
    scale: float = 1.0,
    config=None,
    cycle_budget: int | None = None,
    crash_dir: str | None = None,
) -> CellSpec:
    """Build the CellSpec for one SMT run."""
    return CellSpec(
        workload=smt.label,
        mode=SMT_MODE,
        scale=scale,
        config=config,
        smt=smt,
        cycle_budget=cycle_budget,
        crash_dir=crash_dir,
    )


def run_smt_cell(spec: CellSpec) -> dict:
    """Worker-side execution of an SMT cell (see executor.run_cell_spec)."""
    from ..uarch.smt import SmtPipeline
    from ..workloads import get_workload
    from .engine import _make_watchdog

    smt = spec.smt
    assert isinstance(smt, SmtCellSpec)
    traces = [
        get_workload(name, variant=variant, scale=spec.scale).trace()
        for name, variant in zip(smt.workloads, smt.variants)
    ]
    critical = None
    if smt.critical_pcs is not None:
        critical = [frozenset(pcs) for pcs in smt.critical_pcs]
    context = {"workloads": list(smt.workloads), "mode": SMT_MODE,
               "priority": smt.priority, "fair_slots": smt.fair_slots}
    stats = SmtPipeline(
        traces,
        spec.core_config(),
        priority=smt.priority,
        critical_pcs=critical,
        fair_slots=smt.fair_slots,
        watchdog=_make_watchdog(spec.cycle_budget, spec.crash_dir, context),
        run_context=context,
    ).run()
    merged = SimStats(
        cycles=stats.cycles,
        retired=sum(t.retired for t in stats.threads),
    )
    return {
        "workload": spec.workload,
        "mode": spec.mode,
        "ipc": stats.total_ipc,
        "critical_pcs": [],
        "stats": merged.to_dict(),
        "extra": {
            "smt": {
                "cycles": stats.cycles,
                "threads": [
                    {"retired": t.retired, "cycles": t.cycles,
                     "issued_critical": t.issued_critical}
                    for t in stats.threads
                ],
            }
        },
    }
