"""Co-run cells: lowering a CoRunSpec onto the parallel execution layer.

A whole co-run is *one* cell: :func:`corun_cell` wraps a
:class:`~repro.multicore.spec.CoRunSpec` into a
:class:`~repro.parallel.cellkey.CellSpec` whose key covers mix membership,
core order, per-core mode/annotation, and the shared-memory knobs — so the
pool, the content-addressed cache, retries, and orchestrate run
directories all apply to co-runs unchanged. The executor dispatches cells
carrying a ``corun`` field to :func:`run_corun_cell`.

The cell's top-level ``stats`` is the merged mix view (aggregate IPC on
the global clock); per-core SimStats and the
:class:`~repro.multicore.stats.MulticoreStats` travel in the result's
``extra["corun"]`` payload, which round-trips through the cache.
"""

from __future__ import annotations

from ..parallel.cellkey import CellSpec
from .engine import run_corun
from .spec import CoRunSpec, parse_mix

#: The display mode of a co-run cell. Never reaches ``resolve_mode`` — the
#: executor branches on ``spec.corun`` first; per-core modes live in the
#: CoRunSpec.
CORUN_MODE = "corun"


def corun_cell(
    corun: CoRunSpec | str,
    *,
    scale: float = 1.0,
    config=None,
    invariants: str | None = None,
    cycle_budget: int | None = None,
    crash_dir: str | None = None,
    engine: str | None = None,
) -> CellSpec:
    """Build the CellSpec for one co-run (mix string or CoRunSpec)."""
    if isinstance(corun, str):
        corun = parse_mix(corun)
    return CellSpec(
        workload=corun.label,
        mode=CORUN_MODE,
        scale=scale,
        config=config,
        corun=corun,
        invariants=invariants,
        cycle_budget=cycle_budget,
        crash_dir=crash_dir,
        engine=engine,
    )


def run_corun_cell(spec: CellSpec) -> dict:
    """Worker-side execution of a co-run cell (see executor.run_cell_spec)."""
    corun = spec.corun
    assert isinstance(corun, CoRunSpec)
    result = run_corun(
        corun,
        scale=spec.scale,
        config=spec.config,
        engine=spec.engine,
        invariants=spec.invariants,
        cycle_budget=spec.cycle_budget,
        crash_dir=spec.crash_dir,
    )
    return {
        "workload": spec.workload,
        "mode": spec.mode,
        "ipc": result.ipc,
        "critical_pcs": [],
        "stats": result.stats.to_dict(),
        "extra": {
            "corun": {
                "mix": corun.label,
                "per_core": [part.to_dict() for part in result.per_core],
                "multicore": result.multicore.to_dict(),
                "critical_pcs": [list(pcs) for pcs in result.critical_pcs],
            }
        },
    }


def corun_extra(result) -> dict:
    """The ``extra["corun"]`` payload of a finished co-run CellResult."""
    extra = result.extra.get("corun")
    if extra is None:
        raise RuntimeError(
            f"cell {result.spec.label()} carries no co-run payload"
        )
    return extra
