"""CLI: ``python -m repro.multicore run --mix mcf@crisp+lbm --scale 0.3``.

Lowers one ``workload[@mode]+workload[@mode]`` mix to a single co-run
cell and executes it through the ordinary pooled/cached cell path
(:func:`~repro.parallel.executor.run_cells`), then prints the shared-
memory report: per-core IPC and LLC/DRAM shares, pool pressure, and
cross-core prefetcher effectiveness. ``--expect-cached`` turns the run
into a cache probe (exit 1 unless the cell came back warm) — the CI
multicore smoke uses it to assert the co-run cell key is stable.
"""

from __future__ import annotations

import argparse
import json
import sys

from .cells import corun_cell, corun_extra
from .spec import CoRunSpec, CoreTask, parse_mix
from .stats import MulticoreStats


def _report(spec: CoRunSpec, result, extra: dict) -> str:
    multicore = MulticoreStats.from_dict(extra["multicore"])
    lines = [
        f"mix: {spec.label}",
        f"cell: {result.key}  cached: {result.from_cache}",
        f"cycles: {multicore.cycles}  aggregate IPC: {result.ipc:.3f}",
    ]
    header = (f"{'core':<6}{'workload':<34}{'IPC':>7}{'LLC acc':>10}"
              f"{'hit share':>11}{'DRAM share':>12}{'occupancy':>11}")
    lines.append(header)
    for core, task in enumerate(spec.cores):
        lines.append(
            f"{core:<6}{task.label[:33]:<34}{multicore.core_ipc(core):>7.3f}"
            f"{multicore.core_llc_accesses[core]:>10}"
            f"{multicore.llc_hit_share(core):>11.3f}"
            f"{multicore.dram_share(core):>12.3f}"
            f"{multicore.occupancy_share(core):>11.3f}"
        )
    lines.append(
        f"LLC: {multicore.llc_hits}/{multicore.llc_accesses} hits, "
        f"{multicore.llc_xcore_evictions} cross-core evictions; "
        f"DRAM: {multicore.dram_requests} requests, "
        f"{multicore.dram_bus_stall_cycles} bus-stall cycles"
    )
    lines.append(
        f"LLC MSHR pool: {multicore.pool_allocations} allocations, "
        f"peak {multicore.pool_peak_occupancy}, "
        f"{multicore.pool_full_stalls} full stalls"
    )
    if multicore.xpf_prefetches:
        lines.append(
            f"xcore prefetcher: {multicore.xpf_prefetches} issued, "
            f"{multicore.xpf_fills} filled, {multicore.xpf_useful} useful"
        )
    return "\n".join(lines)


def cmd_run(args) -> int:
    from ..parallel.executor import run_cells

    spec = parse_mix(
        args.mix,
        llc_xcore=args.llc_xcore,
        llc_mshrs_per_core=args.llc_mshrs,
        shared_llc_size=args.shared_llc_size,
    )
    if args.no_prefetchers:
        spec = CoRunSpec(
            cores=tuple(
                CoreTask(t.workload, t.mode, variant=t.variant,
                         critical_pcs=t.critical_pcs,
                         crisp_config=t.crisp_config, prefetchers=())
                for t in spec.cores
            ),
            llc_xcore=spec.llc_xcore,
            llc_mshrs_per_core=spec.llc_mshrs_per_core,
            shared_llc_size=spec.shared_llc_size,
        )
    cell = corun_cell(spec, scale=args.scale, engine=args.engine)
    cache = None
    if not args.no_cache:
        from ..parallel.cache import ResultCache

        cache = ResultCache(args.cache_dir)
    [result] = run_cells([cell], jobs=args.jobs, cache=cache)
    if not result.ok:
        print(f"error: co-run cell failed: {result.error}", file=sys.stderr)
        return 1
    extra = corun_extra(result)
    if args.json:
        print(json.dumps({
            "mix": spec.label,
            "key": result.key,
            "from_cache": result.from_cache,
            "ipc": result.ipc,
            "stats": result.stats.to_dict(),
            "corun": extra,
        }, indent=1))
    else:
        print(_report(spec, result, extra))
    if args.expect_cached and not result.from_cache:
        print("error: --expect-cached but the cell ran cold", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.multicore",
        description="N-core co-run simulation (docs/MULTICORE.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one mix as a pooled co-run cell")
    run_p.add_argument(
        "--mix", required=True,
        help="co-run mix: workload[@mode]+workload[@mode], e.g. mcf@crisp+lbm",
    )
    run_p.add_argument("--scale", type=float, default=1.0,
                       help="iteration scale factor (default: 1.0)")
    run_p.add_argument("--llc-xcore", action="store_true",
                       help="enable the cross-core LLC prefetcher")
    run_p.add_argument("--no-prefetchers", action="store_true",
                       help="disable every core's private hardware prefetchers")
    run_p.add_argument("--llc-mshrs", type=int, default=8,
                       help="shared LLC MSHR pool entries per core (default: 8)")
    run_p.add_argument("--shared-llc-size", type=int, default=None,
                       help="shared LLC bytes (default: the config's llc_size)")
    run_p.add_argument("--jobs", type=int, default=1)
    run_p.add_argument("--cache-dir", default=".repro_cache")
    run_p.add_argument("--no-cache", action="store_true")
    run_p.add_argument("--expect-cached", action="store_true",
                       help="exit 1 unless the result came from the cache")
    run_p.add_argument("--engine", choices=("obj", "array"), default=None)
    run_p.add_argument("--json", action="store_true")
    run_p.set_defaults(func=cmd_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
