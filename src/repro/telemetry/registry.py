"""Hierarchical simulation-statistics registry.

Every pipeline structure (front end, scheduler, ROB, LSQ, caches, MSHRs,
DRAM, ...) registers its counters into one :class:`StatsRegistry` under a
dot-separated hierarchical name (``memory.l1d.misses``). Three metric kinds
are supported:

* :class:`Counter` -- a monotonically increasing event count. Counters can
  be *direct* (owned by the registry, bumped via :meth:`Counter.inc`) or
  *collector-backed*: they read a live value from an existing stats object
  on demand, so the simulator's hot loop keeps its plain-integer fields and
  pays nothing for observability.
* :class:`Gauge` -- an occupancy-over-time series (ROB/RS/MSHR occupancy).
  Sampled periodically; tracks count/sum/min/max/last so mean occupancy is
  available without storing the series.
* :class:`Histogram` -- a bucketed distribution (load latency,
  ready->issue scheduling delay).

Registered metrics carry their documentation: unit, owning structure, a
one-line description, and the paper figure they feed. ``docs/METRICS.md``
is generated from (and lint-checked against) exactly this metadata; see
``scripts/check_metrics_docs.py``.

Registration is cheap (done once per :class:`~repro.uarch.pipeline.Pipeline`
construction) and reading is pull-based: :meth:`StatsRegistry.snapshot`
materialises current values, including collector-backed ones.
"""

from __future__ import annotations

import json
import re
from typing import Callable, Iterator

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")


class Metric:
    """Base class: identity plus documentation metadata."""

    kind = "metric"

    __slots__ = ("name", "unit", "desc", "owner", "figure")

    def __init__(self, name: str, unit: str, desc: str, owner: str, figure: str):
        self.name = name
        self.unit = unit
        self.desc = desc
        self.owner = owner
        self.figure = figure  # paper figure/table this feeds ("fig7", ...)

    @property
    def value(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def reset(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}={self.value}>"


class Counter(Metric):
    """Monotonic event count; direct or collector-backed."""

    kind = "counter"

    __slots__ = ("_value", "_collect", "_offset")

    def __init__(
        self,
        name: str,
        unit: str = "events",
        desc: str = "",
        owner: str = "",
        figure: str = "",
        collect: Callable[[], int | float] | None = None,
    ):
        super().__init__(name, unit, desc, owner, figure)
        self._value = 0
        self._collect = collect
        self._offset = 0

    def inc(self, n: int = 1) -> None:
        if self._collect is not None:
            raise TypeError(f"{self.name} is collector-backed; mutate the source")
        self._value += n

    @property
    def value(self) -> int | float:
        if self._collect is not None:
            return self._collect() - self._offset
        return self._value

    def reset(self) -> None:
        """Zero the counter. Collector-backed counters rebase on the live
        source value, so a registry reset between runs does not require the
        underlying structure to be rebuilt."""
        if self._collect is not None:
            self._offset = self._collect()
        else:
            self._value = 0


class Gauge(Metric):
    """Occupancy-over-time: periodic samples of an instantaneous level."""

    kind = "gauge"

    __slots__ = ("count", "total", "minimum", "maximum", "last")

    def __init__(
        self,
        name: str,
        unit: str = "entries",
        desc: str = "",
        owner: str = "",
        figure: str = "",
    ):
        super().__init__(name, unit, desc, owner, figure)
        self.reset()

    def sample(self, value: int | float) -> None:
        self.count += 1
        self.total += value
        self.last = value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def value(self) -> int | float:
        return self.last

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.minimum = float("inf")
        self.maximum = 0
        self.last = 0

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "samples": self.count,
            "mean": self.mean,
            "min": self.minimum if self.count else 0,
            "max": self.maximum,
            "last": self.last,
        }


#: Default histogram bucket bounds: powers of two, good for cycle counts.
POW2_BOUNDS = tuple(2**i for i in range(11))  # 1 .. 1024, +inf overflow


class Histogram(Metric):
    """Bucketed distribution with fixed upper bounds (last bucket = +inf)."""

    kind = "histogram"

    __slots__ = ("bounds", "counts", "count", "total", "maximum")

    def __init__(
        self,
        name: str,
        unit: str = "cycles",
        desc: str = "",
        owner: str = "",
        figure: str = "",
        bounds: tuple[int, ...] = POW2_BOUNDS,
    ):
        super().__init__(name, unit, desc, owner, figure)
        self.bounds = tuple(bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"{name}: histogram bounds must be strictly increasing")
        self.reset()

    def observe(self, value: int | float, n: int = 1) -> None:
        self.count += n
        self.total += value * n
        if value > self.maximum:
            self.maximum = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += n
                return
        self.counts[-1] += n  # overflow bucket

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def value(self) -> int:
        return self.count

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket containing quantile ``q`` (0..1)."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                return float(self.bounds[i]) if i < len(self.bounds) else float(self.maximum)
        return float(self.maximum)

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.maximum = 0

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "mean": self.mean,
            "max": self.maximum,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


class StatsRegistry:
    """Flat store of hierarchically named metrics.

    Names are dot-separated (``memory.llc.misses``); :meth:`scope` returns a
    view that prefixes registrations, which is how each structure registers
    under its own subtree without knowing the full path.
    """

    def __init__(self):
        self._metrics: dict[str, Metric] = {}

    # -- registration ---------------------------------------------------------

    def _register(self, metric: Metric) -> Metric:
        if not _NAME_RE.match(metric.name):
            raise ValueError(f"invalid metric name {metric.name!r}")
        if metric.name in self._metrics:
            raise ValueError(f"duplicate metric {metric.name!r}")
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, **kw) -> Counter:
        return self._register(Counter(name, **kw))

    def gauge(self, name: str, **kw) -> Gauge:
        return self._register(Gauge(name, **kw))

    def histogram(self, name: str, **kw) -> Histogram:
        return self._register(Histogram(name, **kw))

    def scope(self, prefix: str) -> "Scope":
        return Scope(self, prefix)

    # -- access ---------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Metric:
        return self._metrics[name]

    def value(self, name: str):
        return self._metrics[name].value

    def names(self) -> list[str]:
        return list(self._metrics)

    def find(self, prefix: str) -> list[Metric]:
        """All metrics whose name starts with ``prefix.`` (or equals it)."""
        dotted = prefix + "."
        return [
            m for n, m in self._metrics.items() if n == prefix or n.startswith(dotted)
        ]

    # -- lifecycle / export ---------------------------------------------------

    def reset(self) -> None:
        """Zero every metric (rebasing collector-backed counters)."""
        for metric in self._metrics.values():
            metric.reset()

    def snapshot(self) -> dict[str, dict]:
        """Flat ``{name: snapshot}`` of current values (collectors pulled)."""
        return {name: m.snapshot() for name, m in self._metrics.items()}

    def tree(self) -> dict:
        """Snapshot as a nested dict keyed by name segments."""
        root: dict = {}
        for name, metric in self._metrics.items():
            node = root
            *parents, leaf = name.split(".")
            for part in parents:
                node = node.setdefault(part, {})
            node[leaf] = metric.snapshot()
        return root

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


class Scope:
    """Registration view that prefixes names into a parent registry."""

    def __init__(self, registry: StatsRegistry, prefix: str):
        self.registry = registry
        self.prefix = prefix

    def _name(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def counter(self, name: str, **kw) -> Counter:
        return self.registry.counter(self._name(name), **kw)

    def gauge(self, name: str, **kw) -> Gauge:
        return self.registry.gauge(self._name(name), **kw)

    def histogram(self, name: str, **kw) -> Histogram:
        return self.registry.histogram(self._name(name), **kw)

    def scope(self, prefix: str) -> "Scope":
        return Scope(self.registry, self._name(prefix))
