"""Per-run report rendering: markdown for humans, JSON for tooling.

A :class:`RunReport` condenses one timing run into the quantities the paper
argues from: IPC, where the cycles went (stall attribution -- the Section
5.2 head-of-ROB confirmation metric), how the scheduler treated critical
vs. non-critical instructions (Figure 9's mechanism), and the memory-system
counters (Figures 4/7). The JSON side embeds the full
:class:`~repro.telemetry.registry.StatsRegistry` snapshot, so anything a
structure registered is machine-readable without re-running.

Consumers: ``python -m repro simulate --report``, the
``sim.comparison.WorkloadComparison.report`` method, and the per-figure
experiment modules via ``experiments.common.ExperimentResult.to_markdown``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.uarch
    from ..uarch.stats import SimStats
    from .registry import StatsRegistry


def stall_attribution(stats: "SimStats") -> list[tuple[str, int, float]]:
    """Stall cycles by source as ``(label, cycles, fraction_of_cycles)``.

    This is the single shared implementation of stall-attribution plumbing;
    ``sim.diagnose`` and the run reports both render from it. The
    categories can overlap in time (a blocked front end while the ROB head
    waits on DRAM), so fractions need not sum to 1.
    """
    total = stats.cycles or 1
    rows = [
        ("rob_head_stall", stats.rob_head_stall_cycles),
        ("fetch_stall", stats.fetch_stall_cycles),
        ("icache_stall", stats.icache_stall_cycles),
    ]
    return [(label, cycles, cycles / total) for label, cycles in rows]


def top_stall_pcs(stats: "SimStats", n: int = 10) -> list[tuple[int, int, float]]:
    """Top-``n`` static PCs by head-of-ROB stall cycles: ``(pc, cycles, frac)``."""
    total = stats.cycles or 1
    ranked = sorted(
        stats.rob_head_stall_by_pc.items(), key=lambda kv: kv[1], reverse=True
    )
    return [(pc, cycles, cycles / total) for pc, cycles in ranked[:n]]


@dataclass
class RunReport:
    """One run's summary, renderable as markdown or JSON."""

    workload: str
    mode: str
    stats: "SimStats"
    registry: "StatsRegistry | None" = None

    # -- derived tables -------------------------------------------------------

    def headline(self) -> list[tuple[str, str]]:
        s = self.stats
        return [
            ("IPC", f"{s.ipc:.3f}"),
            ("cycles", str(s.cycles)),
            ("retired", str(s.retired)),
            ("dynamic code bytes", str(s.dynamic_code_bytes)),
        ]

    def scheduler_rows(self) -> list[tuple[str, str]]:
        s = self.stats
        crit_share = s.issued_critical / s.issued if s.issued else 0.0
        return [
            ("issued", str(s.issued)),
            ("issued critical", f"{s.issued_critical} ({crit_share:.1%})"),
            ("critical bypass events", str(s.critical_bypass_events)),
        ]

    def branch_rows(self) -> list[tuple[str, str]]:
        s = self.stats
        return [
            ("conditional branches", str(s.cond_branches)),
            ("mispredict rate", f"{s.branch_mispredict_rate:.3%}"),
            ("BTB misses", str(s.btb_misses)),
            ("RAS mispredicts", str(s.ras_mispredicts)),
        ]

    def memory_rows(self) -> list[tuple[str, str]]:
        s = self.stats
        return [
            ("loads", str(s.loads)),
            ("LLC load misses", str(s.llc_load_misses)),
            ("store forwards", str(s.store_forwards)),
            ("L1I MPKI", f"{s.l1i_mpki():.3f}"),
            ("LLC MPKI", f"{s.llc_mpki():.2f}"),
            ("DRAM requests", str(s.dram_requests)),
            ("DRAM row-hit rate", f"{s.dram_row_hit_rate:.1%}"),
        ]

    # -- renderers ------------------------------------------------------------

    def to_markdown(self, *, top_pcs: int = 10) -> str:
        lines = [f"# Run report — {self.workload} ({self.mode})", ""]

        def table(title: str, rows: list[tuple[str, str]]) -> None:
            lines.append(f"## {title}")
            lines.append("")
            lines.append("| metric | value |")
            lines.append("|---|---|")
            lines.extend(f"| {k} | {v} |" for k, v in rows)
            lines.append("")

        table("Headline", self.headline())

        lines.append("## Stall attribution")
        lines.append("")
        lines.append("| source | cycles | % of cycles |")
        lines.append("|---|---|---|")
        for label, cycles, frac in stall_attribution(self.stats):
            lines.append(f"| {label} | {cycles} | {frac:.1%} |")
        lines.append("")
        lines.append(
            "Categories overlap in time (a stalled front end behind a "
            "DRAM-bound ROB head counts in both), so percentages need not "
            "sum to 100%."
        )
        lines.append("")

        table("Scheduler (critical-first mechanism)", self.scheduler_rows())
        table("Branches", self.branch_rows())
        table("Memory", self.memory_rows())

        pcs = top_stall_pcs(self.stats, top_pcs)
        if pcs:
            lines.append("## Top head-of-ROB stall PCs")
            lines.append("")
            lines.append("| pc | stall cycles | % of cycles |")
            lines.append("|---|---|---|")
            for pc, cycles, frac in pcs:
                lines.append(f"| {pc} | {cycles} | {frac:.1%} |")
            lines.append("")

        if self.registry is not None:
            lines.append("## Registered metrics")
            lines.append("")
            lines.append(
                f"{len(self.registry)} metrics registered; full values in the "
                "JSON report (see docs/METRICS.md for the reference)."
            )
            lines.append("")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        s = self.stats
        out = {
            "workload": self.workload,
            "mode": self.mode,
            "ipc": s.ipc,
            "cycles": s.cycles,
            "retired": s.retired,
            "stall_attribution": [
                {"source": label, "cycles": cycles, "fraction": frac}
                for label, cycles, frac in stall_attribution(s)
            ],
            "scheduler": {
                "issued": s.issued,
                "issued_critical": s.issued_critical,
                "critical_bypass_events": s.critical_bypass_events,
            },
            "top_stall_pcs": [
                {"pc": pc, "cycles": cycles, "fraction": frac}
                for pc, cycles, frac in top_stall_pcs(s)
            ],
        }
        if self.registry is not None:
            out["metrics"] = self.registry.snapshot()
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def build_report(result) -> RunReport:
    """Build a :class:`RunReport` from a ``sim.simulator.SimResult``."""
    return RunReport(
        workload=result.workload_name,
        mode=result.mode,
        stats=result.stats,
        registry=getattr(result, "registry", None),
    )
