"""Cycle-sampled pipeline event tracer.

The tracer records per-instruction pipeline events (fetch, dispatch, issue,
complete, retire) plus point events (LLC misses, mispredict flushes) and
periodic occupancy samples, and exports them in two formats:

* **JSONL** -- one JSON object per line, schema in :data:`JSONL_SCHEMA`;
  trivially consumed by ``pandas.read_json(..., lines=True)`` / ``jq``.
* **Chrome trace** -- the ``chrome://tracing`` / Perfetto JSON format:
  instruction lifetimes become duration slices on a small number of lanes,
  occupancy samples become counter tracks, and flushes become instant
  events. Open the file at ``chrome://tracing`` or https://ui.perfetto.dev.

Tracing a full evaluation run is large, so the tracer is bounded: it stops
recording instruction events after ``max_events`` (occupancy samples keep
flowing -- they are one row per ``sample_interval`` cycles, not per
instruction). Attach a tracer via ``simulate(..., tracer=...)`` or
``Pipeline(..., tracer=...)``; see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
from typing import IO

#: Event types emitted per dynamic instruction (in pipeline order) plus
#: point events. Kept in one place so schema validation and docs agree.
EVENT_TYPES = (
    "fetch",
    "dispatch",
    "issue",
    "complete",
    "retire",
    "llc_miss",
    "flush",
    "sample",
)

#: JSON-schema (draft-07 subset) for one JSONL line.
JSONL_SCHEMA = {
    "type": "object",
    "required": ["cycle", "event"],
    "properties": {
        "cycle": {"type": "integer", "minimum": 0},
        "event": {"enum": list(EVENT_TYPES)},
        "seq": {"type": "integer", "minimum": 0},
        "pc": {"type": "integer", "minimum": 0},
        "critical": {"type": "boolean"},
        "addr": {"type": "integer"},
        "occupancy": {"type": "object"},
    },
    "additionalProperties": False,
}


def validate_event(obj: dict) -> None:
    """Raise ``ValueError`` unless ``obj`` matches :data:`JSONL_SCHEMA`."""
    if not isinstance(obj, dict):
        raise ValueError(f"event must be an object, got {type(obj).__name__}")
    for key in JSONL_SCHEMA["required"]:
        if key not in obj:
            raise ValueError(f"event missing required key {key!r}: {obj}")
    props = JSONL_SCHEMA["properties"]
    for key, value in obj.items():
        if key not in props:
            raise ValueError(f"unknown event key {key!r}: {obj}")
    if obj["event"] not in EVENT_TYPES:
        raise ValueError(f"unknown event type {obj['event']!r}")
    if not isinstance(obj["cycle"], int) or obj["cycle"] < 0:
        raise ValueError(f"bad cycle {obj['cycle']!r}")
    for key in ("seq", "pc", "addr"):
        if key in obj and not isinstance(obj[key], int):
            raise ValueError(f"bad {key} {obj[key]!r}")
    if "critical" in obj and not isinstance(obj["critical"], bool):
        raise ValueError(f"bad critical {obj['critical']!r}")


class EventTracer:
    """Bounded in-memory event recorder with JSONL/Chrome-trace export.

    Parameters
    ----------
    sample_interval:
        Cycles between occupancy samples (ROB/RS/LSQ/MSHR/FTQ levels). The
        pipeline reads this to pace its gauge sampling.
    max_events:
        Cap on recorded *instruction* events; recording stops silently at
        the cap (``dropped`` counts what was lost) so tracing a long run
        cannot exhaust memory.
    """

    def __init__(self, *, sample_interval: int = 64, max_events: int = 200_000):
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self.sample_interval = sample_interval
        self.max_events = max_events
        self.events: list[dict] = []
        self.samples: list[dict] = []
        self.dropped = 0

    # -- recording (called from the pipeline hot loop) ------------------------

    def _emit(self, obj: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(obj)

    def fetch(self, cycle: int, seq: int, pc: int) -> None:
        self._emit({"cycle": cycle, "event": "fetch", "seq": seq, "pc": pc})

    def dispatch(self, cycle: int, seq: int, pc: int, critical: bool) -> None:
        self._emit(
            {"cycle": cycle, "event": "dispatch", "seq": seq, "pc": pc,
             "critical": critical}
        )

    def issue(self, cycle: int, seq: int, pc: int, critical: bool) -> None:
        self._emit(
            {"cycle": cycle, "event": "issue", "seq": seq, "pc": pc,
             "critical": critical}
        )

    def complete(self, cycle: int, seq: int) -> None:
        self._emit({"cycle": cycle, "event": "complete", "seq": seq})

    def retire(self, cycle: int, seq: int, pc: int) -> None:
        self._emit({"cycle": cycle, "event": "retire", "seq": seq, "pc": pc})

    def llc_miss(self, cycle: int, seq: int, pc: int, addr: int) -> None:
        self._emit(
            {"cycle": cycle, "event": "llc_miss", "seq": seq, "pc": pc,
             "addr": addr}
        )

    def flush(self, cycle: int, seq: int, pc: int) -> None:
        """A branch mispredict blocked fetch (front-end flush point)."""
        self._emit({"cycle": cycle, "event": "flush", "seq": seq, "pc": pc})

    def sample(self, cycle: int, occupancy: dict[str, int]) -> None:
        """Periodic occupancy snapshot (not subject to ``max_events``)."""
        self.samples.append(
            {"cycle": cycle, "event": "sample", "occupancy": dict(occupancy)}
        )

    # -- export ---------------------------------------------------------------

    def _all_rows(self) -> list[dict]:
        rows = self.events + self.samples
        rows.sort(key=lambda r: r["cycle"])
        return rows

    def to_jsonl(self) -> str:
        """All rows (events + samples), one JSON object per line."""
        return "".join(json.dumps(row) + "\n" for row in self._all_rows())

    def write_jsonl(self, path_or_file: str | IO[str]) -> int:
        """Write JSONL to ``path_or_file``; returns the row count."""
        text = self.to_jsonl()
        if hasattr(path_or_file, "write"):
            path_or_file.write(text)
        else:
            with open(path_or_file, "w") as handle:
                handle.write(text)
        return len(self.events) + len(self.samples)

    def to_chrome_trace(self, *, lanes: int = 8) -> dict:
        """Render as a Chrome trace-event JSON object.

        Instructions become ``ph="X"`` duration slices (dispatch -> retire,
        falling back to the widest observed span) spread over ``lanes``
        threads; occupancy samples become ``ph="C"`` counter tracks; flushes
        become global instant events. One cycle is mapped to one
        microsecond of trace time.
        """
        per_seq: dict[int, dict] = {}
        instants = []
        for ev in self.events:
            kind = ev["event"]
            if kind == "flush":
                instants.append(
                    {
                        "name": f"flush pc={ev['pc']}",
                        "ph": "i",
                        "s": "g",
                        "ts": ev["cycle"],
                        "pid": 0,
                        "tid": 0,
                        "cat": "flush",
                    }
                )
                continue
            if kind == "llc_miss":
                instants.append(
                    {
                        "name": f"llc_miss pc={ev['pc']}",
                        "ph": "i",
                        "s": "t",
                        "ts": ev["cycle"],
                        "pid": 0,
                        "tid": ev["seq"] % lanes + 1,
                        "cat": "memory",
                    }
                )
                continue
            info = per_seq.setdefault(ev["seq"], {})
            info[kind] = ev["cycle"]
            if "pc" in ev:
                info["pc"] = ev["pc"]
            if "critical" in ev:
                info["critical"] = ev["critical"]

        slices = []
        for seq, info in per_seq.items():
            cycles = [info[k] for k in ("fetch", "dispatch", "issue", "complete", "retire") if k in info]
            if not cycles:
                continue
            start = info.get("dispatch", min(cycles))
            end = info.get("retire", max(cycles))
            name = f"seq={seq} pc={info.get('pc', '?')}"
            if info.get("critical"):
                name += " [critical]"
            slices.append(
                {
                    "name": name,
                    "ph": "X",
                    "ts": start,
                    "dur": max(end - start, 1),
                    "pid": 0,
                    "tid": seq % lanes + 1,
                    "cat": "inst",
                    "args": {k: v for k, v in info.items()},
                }
            )

        counters = [
            {
                "name": "occupancy",
                "ph": "C",
                "ts": row["cycle"],
                "pid": 0,
                "args": dict(row["occupancy"]),
            }
            for row in self.samples
        ]
        meta = [
            {"name": "process_name", "ph": "M", "pid": 0,
             "args": {"name": "repro pipeline"}},
        ] + [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": lane + 1,
             "args": {"name": f"inst lane {lane}"}}
            for lane in range(lanes)
        ]
        return {
            "traceEvents": meta + slices + counters + instants,
            "displayTimeUnit": "ms",
            "metadata": {"unit": "1 trace us = 1 core cycle",
                         "dropped_events": self.dropped},
        }

    def write_chrome_trace(self, path_or_file: str | IO[str], *, lanes: int = 8) -> int:
        """Write the Chrome trace JSON; returns the traceEvents count."""
        trace = self.to_chrome_trace(lanes=lanes)
        if hasattr(path_or_file, "write"):
            json.dump(trace, path_or_file)
        else:
            with open(path_or_file, "w") as handle:
                json.dump(trace, handle)
        return len(trace["traceEvents"])
