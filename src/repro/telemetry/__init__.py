"""Simulator observability: stats registry, event tracing, run reports.

Three pieces (see docs/OBSERVABILITY.md for the user guide and
docs/METRICS.md for the metric reference):

* :mod:`repro.telemetry.registry` -- hierarchical counters / gauges /
  histograms every pipeline structure registers into,
* :mod:`repro.telemetry.tracer` -- cycle-sampled pipeline event traces
  (JSONL + ``chrome://tracing``),
* :mod:`repro.telemetry.report` -- per-run markdown/JSON summaries.
"""

from __future__ import annotations

from .registry import Counter, Gauge, Histogram, Metric, Scope, StatsRegistry
from .report import RunReport, build_report, stall_attribution, top_stall_pcs
from .tracer import EVENT_TYPES, JSONL_SCHEMA, EventTracer, validate_event

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "Scope",
    "StatsRegistry",
    "EventTracer",
    "EVENT_TYPES",
    "JSONL_SCHEMA",
    "validate_event",
    "RunReport",
    "build_report",
    "stall_attribution",
    "top_stall_pcs",
    "metrics_catalog",
]


def metrics_catalog() -> StatsRegistry:
    """The canonical registry: every metric a default pipeline registers.

    Builds a minimal :class:`~repro.uarch.pipeline.Pipeline` (no run) so
    registration alone populates the registry, then adds the parallel
    execution layer's cache/pool counters (docs/PARALLEL.md).
    ``docs/METRICS.md`` and the ``scripts/check_metrics_docs.py`` lint are
    defined against this set.
    """
    from ..isa import Asm, execute  # local import: avoids a package cycle
    from ..multicore.stats import MulticoreStats
    from ..parallel.cache import CacheStats
    from ..parallel.executor import PoolStats
    from ..sampling.sampler import SamplingStats
    from ..serve.telemetry import ServeStats
    from ..uarch.config import CoreConfig
    from ..uarch.pipeline import Pipeline

    a = Asm()
    a.movi("r1", 0)
    a.halt()
    pipeline = Pipeline(execute(a.build()), CoreConfig.skylake())
    registry = pipeline.telemetry
    CacheStats().register_into(registry)
    PoolStats().register_into(registry)
    SamplingStats().register_into(registry)
    ServeStats().register_into(registry)
    MulticoreStats().register_into(registry)
    return registry
